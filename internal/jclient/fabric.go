// Fabric is the client side of the sharded journal: one logical Sink /
// Scanner / Changer over N jserver shards.
//
// Routing: observations route to one shard by consistent hash of their
// natural key (interface IP, subnet address, a gateway's minimum member
// IP), so repeated observations of the same entity always meet in the
// same shard-local journal and its merge logic keeps working. Existing
// records route by ID arithmetic: shard i of N allocates IDs congruent
// to i+1 mod N, so (id-1) mod N names the owner with no lookup.
//
// Scatter-gather reads: Scan* fans one cursor out to every shard and
// merges the pages ID-ordered under a minimum horizon — the page is cut
// at the lowest ID any still-unfinished shard has examined up to, so a
// record below the returned cursor can never be missed, exactly the
// cross-feed merge jserver's subscription hub uses cross-kind. Because
// shards draw from disjoint ID classes the merged cursor is a plain
// record ID, valid fabric-wide.
//
// Changes* cursors are composite (one mod-seq per shard); the uint64 the
// Changer interface exposes is a handle into a bounded table of such
// composites. Handles are monotone, so `next > prev` comparisons keep
// working; a handle from a dead process is simply unknown and the caller
// restarts from 0. Replication, which must persist across processes,
// uses per-shard cursors directly (replicate.PullFabric) instead of
// handles.
//
// Degraded reads: when a shard is down, reads return the surviving
// shards' records and record the outage — Unavailable() names the
// missing shards — instead of failing. Writes to a down shard fail;
// writes routed elsewhere are unaffected.
package jclient

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fremont/internal/fabric"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/obs"
)

// ErrAllShardsUnavailable is returned when a scatter-gather read reaches
// no shard at all; partial outages degrade instead (see Unavailable).
var ErrAllShardsUnavailable = errors.New("jclient: all fabric shards unavailable")

// ErrUnknownCursor is returned for a Changes cursor handle the fabric
// does not hold (evicted, or minted by a previous process). Restart the
// walk from cursor 0.
var ErrUnknownCursor = errors.New("jclient: unknown fabric changes cursor (restart from 0)")

// fabricHandleMax bounds the composite-cursor table; the oldest handle
// is evicted beyond it.
const fabricHandleMax = 16384

// Fabric is a sharded journal client. Create one with DialFabric; it is
// safe for concurrent use.
type Fabric struct {
	ring   *fabric.Ring
	shards []*Pool
	ids    []string

	// PageSize bounds the per-shard page used by scatter-gather reads; 0
	// means the server default. A merged Scan page never exceeds it; a
	// merged Changes page may reach PageSize × shards (pages concatenate
	// across shards rather than interleave).
	PageSize int

	mu      sync.Mutex
	down    map[int]error          // shard index -> last failure, cleared on success
	handles map[uint64]*fabricSeqs // composite Changes cursors
	order   []uint64               // handle eviction queue, oldest first
	nextH   uint64
}

// fabricSeqs is one composite Changes cursor: a per-shard mod-seq
// vector, tagged with the record kind it pages.
type fabricSeqs struct {
	kind journal.RecordKind
	seqs []uint64
}

var (
	_ journal.Sink    = (*Fabric)(nil)
	_ journal.Scanner = (*Fabric)(nil)
	_ journal.Changer = (*Fabric)(nil)
	_ Conn            = (*Fabric)(nil)
)

// DialFabric creates a fabric client over the shards at addrs (in shard
// order — positions must match the servers' ID-stripe offsets, i.e. the
// order fabric.Fabric.Addrs returns). Connections are dialed lazily, up
// to poolSize per shard, so a shard that is down at construction time
// costs nothing until an operation needs it.
func DialFabric(addrs []string, poolSize int, opts ...Option) (*Fabric, error) {
	if len(addrs) == 0 {
		return nil, errors.New("jclient: fabric needs at least one shard address")
	}
	f := &Fabric{
		ring:    fabric.NewRing(len(addrs), 0),
		down:    map[int]error{},
		handles: map[uint64]*fabricSeqs{},
	}
	for i, addr := range addrs {
		f.shards = append(f.shards, NewPool(addr, poolSize, opts...))
		f.ids = append(f.ids, fabric.ShardID(i))
	}
	return f, nil
}

// Use scopes the whole fabric to a tenant namespace: every connection
// dialed from here on runs against that tenant's journal on its shard.
// Call it before the fabric carries traffic — already-dialed pooled
// connections keep their previous scope.
func (f *Fabric) Use(namespace string) {
	for _, p := range f.shards {
		if namespace == "" {
			p.OnDial = nil
			continue
		}
		ns := namespace
		p.OnDial = func(c *Client) error { return c.Use(ns) }
	}
}

// NumShards reports the fabric width.
func (f *Fabric) NumShards() int { return len(f.shards) }

// Shard exposes the pool for shard i, for callers that address shards
// directly (replication, per-shard stats).
func (f *Fabric) Shard(i int) *Pool { return f.shards[i] }

// ShardIDs returns the stable shard names ("shard0", …), in shard order.
func (f *Fabric) ShardIDs() []string {
	ids := make([]string, len(f.ids))
	copy(ids, f.ids)
	return ids
}

// Close closes every shard pool.
func (f *Fabric) Close() error {
	var first error
	for _, p := range f.shards {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Unavailable returns the shards whose most recent operation failed,
// sorted by shard. Empty means the whole fabric answered its last
// operations. A shard leaves the list the moment an operation succeeds
// against it again.
func (f *Fabric) Unavailable() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := make([]int, 0, len(f.down))
	for i := range f.down {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]string, len(idx))
	for n, i := range idx {
		out[n] = f.ids[i]
	}
	return out
}

// noteShard records the outcome of one shard operation for Unavailable.
func (f *Fabric) noteShard(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.down[i] = err
	} else {
		delete(f.down, i)
	}
}

// shardFor routes a key string to its shard index.
func (f *Fabric) shardFor(key string) int { return f.ring.Lookup(key) }

// shardForID routes an existing record ID to the shard that allocated it.
func (f *Fabric) shardForID(id journal.ID) int {
	return fabric.ShardForID(id, len(f.shards))
}

// onShard runs fn against shard i and records the outcome.
func (f *Fabric) onShard(i int, fn func(p *Pool) error) error {
	err := fn(f.shards[i])
	f.noteShard(i, err)
	if err != nil {
		return fmt.Errorf("%s: %w", f.ids[i], err)
	}
	return nil
}

// ServerStats fetches every shard's metrics snapshot over the journal
// protocol and merges them under shard<i>_ prefixes — the same document
// a fabric fremontd serves at -metrics-addr. Down shards are absent from
// the merge (and named by Unavailable); the error is non-nil only when
// no shard answers.
func (f *Fabric) ServerStats() (*obs.Snapshot, error) {
	snaps := make([]*obs.Snapshot, len(f.shards))
	if err := f.scatter(func(i int, p *Pool) error {
		var e error
		snaps[i], e = p.ServerStats()
		return e
	}); err != nil {
		return nil, err
	}
	merged := &obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]obs.HistSnapshot{},
	}
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		prefix := f.ids[i] + "_"
		if snap.TakenAt.After(merged.TakenAt) {
			merged.TakenAt = snap.TakenAt
		}
		for k, v := range snap.Counters {
			merged.Counters[prefix+k] = v
		}
		for k, v := range snap.Gauges {
			merged.Gauges[prefix+k] = v
		}
		for k, v := range snap.Histograms {
			merged.Histograms[prefix+k] = v
		}
		for _, sp := range snap.Spans {
			sp.Name = prefix + sp.Name
			merged.Spans = append(merged.Spans, sp)
		}
	}
	return merged, nil
}

// --- Sink: writes route by hash, single shard ----------------------------

// StoreInterface implements journal.Sink: the observation routes by its
// IP to one shard.
func (f *Fabric) StoreInterface(obs journal.IfaceObs) (id journal.ID, created bool, err error) {
	err = f.onShard(f.shardFor(fabric.IfaceKey(obs.IP)), func(p *Pool) error {
		var e error
		id, created, e = p.StoreInterface(obs)
		return e
	})
	return id, created, err
}

// StoreGateway implements journal.Sink: the observation routes by its
// minimum member IP (else minimum subnet).
func (f *Fabric) StoreGateway(obs journal.GatewayObs) (id journal.ID, err error) {
	key, ok := fabric.GatewayKey(obs)
	shard := 0
	if ok {
		shard = f.shardFor(key)
	}
	err = f.onShard(shard, func(p *Pool) error {
		var e error
		id, e = p.StoreGateway(obs)
		return e
	})
	return id, err
}

// StoreSubnet implements journal.Sink: the observation routes by its
// subnet address.
func (f *Fabric) StoreSubnet(obs journal.SubnetObs) (id journal.ID, err error) {
	err = f.onShard(f.shardFor(fabric.SubnetKey(obs.Subnet)), func(p *Pool) error {
		var e error
		id, e = p.StoreSubnet(obs)
		return e
	})
	return id, err
}

// Delete implements journal.Sink: the ID names its shard by stripe
// arithmetic.
func (f *Fabric) Delete(kind journal.RecordKind, id journal.ID) (ok bool, err error) {
	err = f.onShard(f.shardForID(id), func(p *Pool) error {
		var e error
		ok, e = p.Delete(kind, id)
		return e
	})
	return ok, err
}

// Ping succeeds when every shard answers; the error names the first
// shard that did not.
func (f *Fabric) Ping() error {
	for i := range f.shards {
		if err := f.onShard(i, func(p *Pool) error { return p.Ping() }); err != nil {
			return err
		}
	}
	return nil
}

// --- Sink: queries scatter (or route, when indexed by IP/ID) --------------

// scatter runs fn against every shard concurrently. Shards that fail are
// recorded for Unavailable and skipped; the error is non-nil only when
// no shard answered.
func (f *Fabric) scatter(fn func(i int, p *Pool) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(f.shards))
	for i := range f.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, f.shards[i])
			f.noteShard(i, errs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("%w: %v", ErrAllShardsUnavailable, errs[0])
}

// Interfaces implements journal.Sink. An exact-IP query routes to one
// shard and an exact-ID query to its stripe owner; everything else
// scatters and merges in ID order.
func (f *Fabric) Interfaces(q journal.Query) (recs []*journal.InterfaceRec, err error) {
	switch {
	case q.HasIP:
		err = f.onShard(f.shardFor(fabric.IfaceKey(q.ByIP)), func(p *Pool) error {
			var e error
			recs, e = p.Interfaces(q)
			return e
		})
		return recs, err
	case q.HasID:
		err = f.onShard(f.shardForID(q.ByID), func(p *Pool) error {
			var e error
			recs, e = p.Interfaces(q)
			return e
		})
		return recs, err
	}
	pages := make([][]*journal.InterfaceRec, len(f.shards))
	if err := f.scatter(func(i int, p *Pool) error {
		var e error
		pages[i], e = p.Interfaces(q)
		return e
	}); err != nil {
		return nil, err
	}
	for _, page := range pages {
		recs = append(recs, page...)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs, nil
}

// Gateways implements journal.Sink: scatter, merge in ID order.
func (f *Fabric) Gateways() (recs []*journal.GatewayRec, err error) {
	pages := make([][]*journal.GatewayRec, len(f.shards))
	if err := f.scatter(func(i int, p *Pool) error {
		var e error
		pages[i], e = p.Gateways()
		return e
	}); err != nil {
		return nil, err
	}
	for _, page := range pages {
		recs = append(recs, page...)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs, nil
}

// Subnets implements journal.Sink: scatter, merge ordered by subnet
// address (the order Subnets contracts to return).
func (f *Fabric) Subnets() (recs []*journal.SubnetRec, err error) {
	pages := make([][]*journal.SubnetRec, len(f.shards))
	if err := f.scatter(func(i int, p *Pool) error {
		var e error
		pages[i], e = p.Subnets()
		return e
	}); err != nil {
		return nil, err
	}
	for _, page := range pages {
		recs = append(recs, page...)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Subnet.Addr < recs[b].Subnet.Addr })
	return recs, nil
}

// --- Scanner: scatter-gather with a minimum-horizon merge -----------------

// shardPage is one shard's scan response in kind-erased form.
type shardPage struct {
	ids  []journal.ID // ascending record IDs of the page
	next journal.ID
	more bool
	ok   bool // the shard answered
}

// mergeHorizon computes the fabric cursor from per-shard pages: the
// merged page may only contain records at or below H, where H is the
// lowest `next` any unfinished shard reported — everything at or below H
// has been examined by every answering shard, so nothing below the
// cursor can surface later. When every shard finished, H is the highest
// horizon instead and the scan is complete. Returns H and whether any
// shard has more.
func mergeHorizon(pages []shardPage) (h journal.ID, more bool) {
	first := true
	var maxNext journal.ID
	for _, pg := range pages {
		if !pg.ok {
			continue
		}
		if pg.next > maxNext {
			maxNext = pg.next
		}
		if pg.more {
			more = true
			if first || pg.next < h {
				h = pg.next
				first = false
			}
		}
	}
	if !more {
		return maxNext, false
	}
	return h, true
}

// ScanInterfaces implements journal.Scanner fabric-wide: one plain ID
// cursor, pages merged in ascending ID order across shards. Down shards
// degrade the page (their records are absent and Unavailable names
// them); the error is non-nil only when no shard answers.
func (f *Fabric) ScanInterfaces(cursor journal.ID, limit int, q journal.Query) ([]*journal.InterfaceRec, journal.ID, bool, error) {
	if limit <= 0 {
		limit = journal.DefaultScanLimit
	}
	perShard := f.perShardLimit(limit)
	pages := make([]shardPage, len(f.shards))
	recs := make([][]*journal.InterfaceRec, len(f.shards))
	err := f.scatter(func(i int, p *Pool) error {
		rs, next, more, e := p.ScanInterfaces(cursor, perShard, q)
		if e != nil {
			return e
		}
		recs[i] = rs
		pages[i] = shardPage{next: next, more: more, ok: true}
		return nil
	})
	if err != nil {
		return nil, cursor, false, err
	}
	h, more := mergeHorizon(pages)
	merged := mergeRecs(recs, h, func(r *journal.InterfaceRec) journal.ID { return r.ID })
	if len(merged) > limit {
		merged = merged[:limit]
		return merged, merged[len(merged)-1].ID, true, nil
	}
	return merged, h, more, nil
}

// ScanGateways implements journal.Scanner fabric-wide: see
// ScanInterfaces.
func (f *Fabric) ScanGateways(cursor journal.ID, limit int) ([]*journal.GatewayRec, journal.ID, bool, error) {
	if limit <= 0 {
		limit = journal.DefaultScanLimit
	}
	perShard := f.perShardLimit(limit)
	pages := make([]shardPage, len(f.shards))
	recs := make([][]*journal.GatewayRec, len(f.shards))
	err := f.scatter(func(i int, p *Pool) error {
		rs, next, more, e := p.ScanGateways(cursor, perShard)
		if e != nil {
			return e
		}
		recs[i] = rs
		pages[i] = shardPage{next: next, more: more, ok: true}
		return nil
	})
	if err != nil {
		return nil, cursor, false, err
	}
	h, more := mergeHorizon(pages)
	merged := mergeRecs(recs, h, func(r *journal.GatewayRec) journal.ID { return r.ID })
	if len(merged) > limit {
		merged = merged[:limit]
		return merged, merged[len(merged)-1].ID, true, nil
	}
	return merged, h, more, nil
}

// ScanSubnets implements journal.Scanner fabric-wide: see
// ScanInterfaces.
func (f *Fabric) ScanSubnets(cursor journal.ID, limit int) ([]*journal.SubnetRec, journal.ID, bool, error) {
	if limit <= 0 {
		limit = journal.DefaultScanLimit
	}
	perShard := f.perShardLimit(limit)
	pages := make([]shardPage, len(f.shards))
	recs := make([][]*journal.SubnetRec, len(f.shards))
	err := f.scatter(func(i int, p *Pool) error {
		rs, next, more, e := p.ScanSubnets(cursor, perShard)
		if e != nil {
			return e
		}
		recs[i] = rs
		pages[i] = shardPage{next: next, more: more, ok: true}
		return nil
	})
	if err != nil {
		return nil, cursor, false, err
	}
	h, more := mergeHorizon(pages)
	merged := mergeRecs(recs, h, func(r *journal.SubnetRec) journal.ID { return r.ID })
	if len(merged) > limit {
		merged = merged[:limit]
		return merged, merged[len(merged)-1].ID, true, nil
	}
	return merged, h, more, nil
}

// perShardLimit sizes the per-shard fetch for a merged page of `limit`:
// records interleave round-robin across stripes in the balanced case, so
// each shard contributes about limit/N — fetch a little more so one
// round trip usually fills the page even with some imbalance.
func (f *Fabric) perShardLimit(limit int) int {
	n := len(f.shards)
	if n <= 1 {
		return limit
	}
	per := limit/n + limit/(2*n) + 1
	if per > jwire.MaxScanPage {
		per = jwire.MaxScanPage
	}
	return per
}

// mergeRecs flattens per-shard ID-ascending pages into one ID-ascending
// slice, dropping records above the horizon. Shards own disjoint ID
// classes, so equal IDs cannot occur and a plain merge sort suffices.
func mergeRecs[T any](pages [][]T, horizon journal.ID, id func(T) journal.ID) []T {
	var out []T
	for _, pg := range pages {
		for _, r := range pg {
			if id(r) <= horizon {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return id(out[a]) < id(out[b]) })
	return out
}

// --- Changer: composite cursors behind monotone handles -------------------

// resolveHandle maps a Changer cursor to its per-shard seq vector. 0 is
// the zero cursor for any kind.
func (f *Fabric) resolveHandle(after uint64, kind journal.RecordKind) ([]uint64, error) {
	if after == 0 {
		return make([]uint64, len(f.shards)), nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cs := f.handles[after]
	if cs == nil {
		return nil, ErrUnknownCursor
	}
	if cs.kind != kind {
		return nil, fmt.Errorf("jclient: fabric changes cursor %d is for record kind %d, not %d", after, cs.kind, kind)
	}
	seqs := make([]uint64, len(cs.seqs))
	copy(seqs, cs.seqs)
	return seqs, nil
}

// mintHandle stores a composite cursor and returns its handle. Handles
// increase monotonically (so `next > prev` caller logic holds) and the
// oldest are evicted beyond fabricHandleMax.
func (f *Fabric) mintHandle(kind journal.RecordKind, seqs []uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextH++
	h := f.nextH
	f.handles[h] = &fabricSeqs{kind: kind, seqs: seqs}
	f.order = append(f.order, h)
	if len(f.order) > fabricHandleMax {
		evict := f.order[0]
		f.order = f.order[1:]
		delete(f.handles, evict)
	}
	return h
}

// fabricChanges is the shared Changes engine: page every shard from its
// seq in the composite cursor, concatenate in shard order, mint the
// advanced cursor. A down shard's seq is carried forward unchanged, so
// when it returns the next page picks up exactly where it left off — an
// outage delays its changes, never loses them. If nothing advanced the
// original cursor comes back unchanged (and unpersisted), keeping no-op
// polls free.
func fabricChanges[T any](f *Fabric, kind journal.RecordKind, after uint64, limit int,
	page func(p *Pool, seq uint64, limit int) ([]T, uint64, bool, error),
) ([]T, uint64, bool, error) {
	seqs, err := f.resolveHandle(after, kind)
	if err != nil {
		return nil, after, false, err
	}
	if limit <= 0 {
		limit = journal.DefaultScanLimit
	}
	recs := make([][]T, len(f.shards))
	next := make([]uint64, len(f.shards))
	copy(next, seqs)
	anyMore := false
	var moreMu sync.Mutex
	err = f.scatter(func(i int, p *Pool) error {
		rs, n, more, e := page(p, seqs[i], limit)
		if e != nil {
			return e
		}
		recs[i] = rs
		if n > next[i] {
			next[i] = n
		}
		if more {
			moreMu.Lock()
			anyMore = true
			moreMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, after, false, err
	}
	var out []T
	for _, rs := range recs {
		out = append(out, rs...)
	}
	advanced := false
	for i := range next {
		if next[i] != seqs[i] {
			advanced = true
			break
		}
	}
	if !advanced {
		return out, after, anyMore, nil
	}
	return out, f.mintHandle(kind, next), anyMore, nil
}

// InterfaceChanges implements journal.Changer fabric-wide. The cursor is
// a composite handle (see the package comment); a page concatenates the
// shards' pages in shard order, so ordering is per-shard oldest-first,
// not global.
func (f *Fabric) InterfaceChanges(after uint64, limit int) ([]*journal.InterfaceRec, uint64, bool, error) {
	return fabricChanges(f, journal.KindInterface, after, limit,
		func(p *Pool, seq uint64, limit int) ([]*journal.InterfaceRec, uint64, bool, error) {
			return p.InterfaceChanges(seq, limit)
		})
}

// GatewayChanges implements journal.Changer fabric-wide: see
// InterfaceChanges.
func (f *Fabric) GatewayChanges(after uint64, limit int) ([]*journal.GatewayRec, uint64, bool, error) {
	return fabricChanges(f, journal.KindGateway, after, limit,
		func(p *Pool, seq uint64, limit int) ([]*journal.GatewayRec, uint64, bool, error) {
			return p.GatewayChanges(seq, limit)
		})
}

// SubnetChanges implements journal.Changer fabric-wide: see
// InterfaceChanges.
func (f *Fabric) SubnetChanges(after uint64, limit int) ([]*journal.SubnetRec, uint64, bool, error) {
	return fabricChanges(f, journal.KindSubnet, after, limit,
		func(p *Pool, seq uint64, limit int) ([]*journal.SubnetRec, uint64, bool, error) {
			return p.SubnetChanges(seq, limit)
		})
}

// --- Batches: split by routing key, one sub-batch per shard ---------------

// StoreBatch implements the Conn batch surface by splitting the batch
// into per-shard sub-batches along the same routing keys single stores
// use, executing them concurrently, and reassembling results in the
// original order. A down shard fails its slots (BatchResult.Err), not
// the whole batch, unless every shard is down.
func (f *Fabric) StoreBatch(b *Batch) ([]BatchResult, error) {
	n := b.Len()
	if n == 0 {
		return nil, nil
	}
	type slot struct {
		shard int
		pos   int // index within the shard's sub-batch
	}
	slots := make([]slot, n)
	subs := make([]*Batch, len(f.shards))
	for k := 0; k < n; k++ {
		op, body := b.op(k)
		r := &jwire.Reader{B: body}
		shard := 0
		switch op {
		case jwire.OpStoreInterface:
			obs := jwire.GetIfaceObs(r)
			if r.Err != nil {
				return nil, fmt.Errorf("jclient: fabric batch slot %d: %w", k, r.Err)
			}
			shard = f.shardFor(fabric.IfaceKey(obs.IP))
		case jwire.OpStoreGateway:
			obs := jwire.GetGatewayObs(r)
			if r.Err != nil {
				return nil, fmt.Errorf("jclient: fabric batch slot %d: %w", k, r.Err)
			}
			if key, ok := fabric.GatewayKey(obs); ok {
				shard = f.shardFor(key)
			}
		case jwire.OpStoreSubnet:
			obs := jwire.GetSubnetObs(r)
			if r.Err != nil {
				return nil, fmt.Errorf("jclient: fabric batch slot %d: %w", k, r.Err)
			}
			shard = f.shardFor(fabric.SubnetKey(obs.Subnet))
		case jwire.OpDelete:
			r.U8() // kind
			shard = f.shardForID(r.ID())
			if r.Err != nil {
				return nil, fmt.Errorf("jclient: fabric batch slot %d: %w", k, r.Err)
			}
		default:
			return nil, fmt.Errorf("jclient: fabric batch slot %d: opcode %d not routable", k, op)
		}
		if subs[shard] == nil {
			subs[shard] = &Batch{}
		}
		subs[shard].addRaw(op, body)
		slots[k] = slot{shard: shard, pos: subs[shard].Len() - 1}
	}

	shardResults := make([][]BatchResult, len(f.shards))
	shardErrs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, sub := range subs {
		if sub == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sub *Batch) {
			defer wg.Done()
			shardResults[i], shardErrs[i] = f.shards[i].StoreBatch(sub)
			f.noteShard(i, shardErrs[i])
		}(i, sub)
	}
	wg.Wait()

	out := make([]BatchResult, n)
	allFailed := true
	for k, s := range slots {
		if shardErrs[s.shard] != nil {
			out[k] = BatchResult{Err: fmt.Errorf("%s: %w", f.ids[s.shard], shardErrs[s.shard])}
			continue
		}
		allFailed = false
		out[k] = shardResults[s.shard][s.pos]
	}
	if allFailed {
		return out, fmt.Errorf("%w: %v", ErrAllShardsUnavailable, slots[0])
	}
	return out, nil
}

// --- Subscribe: per-shard streams fanned into one channel ----------------

// FabricChange is one event from a fabric subscription: the shard it
// came from plus the change itself. Seq is shard-local.
type FabricChange struct {
	Shard string
	Change
}

// FabricSubscribeOptions configures a fabric subscription. After maps
// shard ID -> resume cursor (shard-local mod-seqs, as reported by
// Cursors); missing shards start from 0. FromNow overrides After.
type FabricSubscribeOptions struct {
	Kinds   byte
	FromNow bool
	After   map[string]uint64
}

// FabricSubscription fans per-shard push streams into one channel.
// Each underlying stream keeps its own auto-resume (cursor redial with
// backoff), so a shard restart suspends only that shard's events.
type FabricSubscription struct {
	f    *Fabric
	subs []*Subscription
	ch   chan FabricChange
	wg   sync.WaitGroup
}

// Subscribe opens a change stream on every shard. Unlike reads, a
// subscription needs every shard reachable at start — a missing shard
// would silently drop its changes — so any failed handshake aborts with
// that shard's error.
func (f *Fabric) Subscribe(opts FabricSubscribeOptions) (*FabricSubscription, error) {
	fs := &FabricSubscription{f: f, ch: make(chan FabricChange, 64)}
	for i := range f.shards {
		after := opts.After[f.ids[i]]
		sub, err := Subscribe(f.shards[i].Addr(), SubscribeOptions{
			Kinds: opts.Kinds, FromNow: opts.FromNow, After: after,
		})
		f.noteShard(i, err)
		if err != nil {
			for _, s := range fs.subs {
				s.Close()
			}
			return nil, fmt.Errorf("%s: %w", f.ids[i], err)
		}
		fs.subs = append(fs.subs, sub)
	}
	for i, sub := range fs.subs {
		fs.wg.Add(1)
		go func(id string, sub *Subscription) {
			defer fs.wg.Done()
			for ch := range sub.Events() {
				fs.ch <- FabricChange{Shard: id, Change: ch}
			}
		}(f.ids[i], sub)
	}
	go func() {
		fs.wg.Wait()
		close(fs.ch)
	}()
	return fs, nil
}

// Events returns the merged delivery channel; it closes when every
// shard's stream has ended.
func (fs *FabricSubscription) Events() <-chan FabricChange { return fs.ch }

// Cursors returns each shard's last delivered mod-seq — the map to pass
// as After to resume the whole fabric stream later.
func (fs *FabricSubscription) Cursors() map[string]uint64 {
	out := make(map[string]uint64, len(fs.subs))
	for i, sub := range fs.subs {
		out[fs.f.ids[i]] = sub.Cursor()
	}
	return out
}

// Resumes sums the per-shard auto-resume counts.
func (fs *FabricSubscription) Resumes() int {
	n := 0
	for _, sub := range fs.subs {
		n += sub.Resumes()
	}
	return n
}

// Err returns the first shard stream's terminal error, nil if all ended
// by Close.
func (fs *FabricSubscription) Err() error {
	for _, sub := range fs.subs {
		if err := sub.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close ends every shard stream and waits for the merged channel to
// drain.
func (fs *FabricSubscription) Close() error {
	for _, sub := range fs.subs {
		go sub.Close()
	}
	for range fs.ch {
	}
	return nil
}
