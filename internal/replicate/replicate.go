// Package replicate implements Journal-to-Journal information sharing:
// "the system can be replicated at multiple sites, exploring different
// networks, and sharing information among the replicated components." A
// pull replicates one Journal's records into another by replaying them as
// observations, so the receiving Journal's merge logic (gateway
// unification, conflict preservation, per-field stamps) applies exactly as
// if the remote site's Explorer Modules had reported directly.
//
// Both ends are journal.Sink, so any combination of in-process Journals
// and remote Journal Servers works.
package replicate

import (
	"fmt"
	"strconv"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
)

// Report summarizes one replication pull.
type Report struct {
	Interfaces int
	Gateways   int
	Subnets    int
}

func (r Report) String() string {
	return fmt.Sprintf("replicate: %d interfaces, %d gateways, %d subnets pulled",
		r.Interfaces, r.Gateways, r.Subnets)
}

// flusher is the optional batching interface (satisfied by
// jclient.Buffered): Pull drains any buffered stores before returning, so
// a batching destination is fully written when Pull reports success.
type flusher interface{ Flush() error }

// Pull copies everything modified since `since` (zero = everything) from
// src into dst. Records are replayed as observations: discovery first,
// then verification, so the destination's stamps bracket the source's.
//
// When dst buffers stores (jclient.Buffered), the replay rides the batched
// wire protocol — one round trip per batch instead of one per observation —
// and Pull flushes the tail before returning.
func Pull(dst, src journal.Sink, since time.Time) (Report, error) {
	reg := obs.Default()
	reg.Counter("replicate_pulls_total").Inc()
	span := reg.StartSpan("replicate:pull")
	rep, err := pull(dst, src, since)
	if f, ok := dst.(flusher); ok {
		if ferr := f.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	records := reg.CounterVec("replicate_records_total", "kind")
	records.With("interface").Add(int64(rep.Interfaces))
	records.With("gateway").Add(int64(rep.Gateways))
	records.With("subnet").Add(int64(rep.Subnets))
	if err != nil {
		reg.Counter("replicate_errors_total").Inc()
	}
	span.SetAttr("interfaces", strconv.Itoa(rep.Interfaces))
	span.SetAttr("gateways", strconv.Itoa(rep.Gateways))
	span.SetAttr("subnets", strconv.Itoa(rep.Subnets))
	span.End(err)
	return rep, err
}

func pull(dst, src journal.Sink, since time.Time) (Report, error) {
	var rep Report

	ifs, err := src.Interfaces(journal.Query{ModifiedSince: since})
	if err != nil {
		return rep, err
	}
	for _, rec := range ifs {
		obs := journal.IfaceObs{
			IP:             rec.IP,
			Name:           rec.Name,
			RIPSource:      rec.RIPSource,
			RIPPromiscuous: rec.RIPPromiscuous,
			Source:         rec.Sources,
			At:             rec.Stamp.Discovered,
		}
		if !rec.MAC.IsZero() {
			obs.HasMAC, obs.MAC = true, rec.MAC
		}
		if rec.Mask != 0 {
			obs.HasMask, obs.Mask = true, rec.Mask
		}
		if _, _, err := dst.StoreInterface(obs); err != nil {
			return rep, err
		}
		// Re-verify at the source's latest verification time, and carry
		// aliases across.
		obs.At = rec.Stamp.Verified
		if _, _, err := dst.StoreInterface(obs); err != nil {
			return rep, err
		}
		for _, alias := range rec.Aliases {
			if _, _, err := dst.StoreInterface(journal.IfaceObs{
				IP: rec.IP, Name: alias, Source: rec.Sources, At: rec.Stamp.Verified,
			}); err != nil {
				return rep, err
			}
		}
		rep.Interfaces++
	}

	// Gateways: resolve member interface IDs to addresses via the source.
	gws, err := src.Gateways()
	if err != nil {
		return rep, err
	}
	srcIfs, err := src.Interfaces(journal.Query{})
	if err != nil {
		return rep, err
	}
	byID := map[journal.ID]pkt.IP{}
	for _, rec := range srcIfs {
		byID[rec.ID] = rec.IP
	}
	for _, gw := range gws {
		var ips []pkt.IP
		for _, ifID := range gw.Ifaces {
			if ip, ok := byID[ifID]; ok {
				ips = append(ips, ip)
			}
		}
		if len(ips) == 0 && len(gw.Subnets) == 0 {
			continue
		}
		if _, err := dst.StoreGateway(journal.GatewayObs{
			IfaceIPs:     ips,
			Subnets:      gw.Subnets,
			Questionable: gw.Questionable,
			Source:       gw.Sources,
			At:           gw.Stamp.Verified,
		}); err != nil {
			return rep, err
		}
		rep.Gateways++
	}

	sns, err := src.Subnets()
	if err != nil {
		return rep, err
	}
	for _, sn := range sns {
		if _, err := dst.StoreSubnet(journal.SubnetObs{
			Subnet:    sn.Subnet,
			Metric:    sn.RIPMetric,
			HostCount: sn.HostCount,
			LoAddr:    sn.LoAddr,
			HiAddr:    sn.HiAddr,
			Source:    sn.Sources,
			At:        sn.Stamp.Verified,
		}); err != nil {
			return rep, err
		}
		rep.Subnets++
	}
	return rep, nil
}

// Exchange performs a bidirectional pull between two sites.
func Exchange(a, b journal.Sink, since time.Time) (Report, Report, error) {
	ab, err := Pull(b, a, since)
	if err != nil {
		return ab, Report{}, err
	}
	ba, err := Pull(a, b, since)
	return ab, ba, err
}
