// Package replicate implements Journal-to-Journal information sharing:
// "the system can be replicated at multiple sites, exploring different
// networks, and sharing information among the replicated components." A
// pull replicates one Journal's records into another by replaying them as
// observations, so the receiving Journal's merge logic (gateway
// unification, conflict preservation, per-field stamps) applies exactly as
// if the remote site's Explorer Modules had reported directly.
//
// Pulls are incremental: each carries a Cursor of per-kind modification
// sequence numbers, and only records the source mutated after the cursor
// are transferred (journal.Changer pages them out oldest change first).
// A pull against an unchanged source transfers zero records and costs the
// source O(1) per kind — the cursor short-circuits at the tail of the
// modification-ordered lists. Persist the returned cursor (fremont-sync
// keeps it in a cursor file) and pass it to the next pull.
//
// The destination is any journal.Sink; the source must also answer
// change queries (see Source) — satisfied by journal.Local and by the
// jclient types, so any combination of in-process Journals and remote
// Journal Servers works.
package replicate

import (
	"fmt"
	"strconv"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
)

// Source is what a pull reads from: change queries for the incremental
// record stream, plus the plain Sink queries used to resolve gateway
// member interface IDs to addresses.
type Source interface {
	journal.Sink
	journal.Changer
}

// Cursor records per-kind replication progress: the highest modification
// sequence number of the source already replayed, per record kind. Kinds
// advance independently so a partial failure never skips records. The
// zero Cursor means "from the beginning".
type Cursor struct {
	Interfaces uint64
	Gateways   uint64
	Subnets    uint64
}

// IsZero reports whether the cursor is the beginning-of-journal cursor.
func (c Cursor) IsZero() bool { return c == Cursor{} }

func (c Cursor) String() string {
	return fmt.Sprintf("interfaces=%d gateways=%d subnets=%d", c.Interfaces, c.Gateways, c.Subnets)
}

// Report summarizes one replication pull.
type Report struct {
	Interfaces int
	Gateways   int
	Subnets    int
}

func (r Report) String() string {
	return fmt.Sprintf("replicate: %d interfaces, %d gateways, %d subnets pulled",
		r.Interfaces, r.Gateways, r.Subnets)
}

// flusher is the optional batching interface (satisfied by
// jclient.Buffered): Pull drains any buffered stores before returning, so
// a batching destination is fully written when Pull reports success.
type flusher interface{ Flush() error }

// Pull copies every record src mutated after cur (the zero Cursor =
// everything) into dst, and returns the cursor to resume from next time.
// Records are replayed as observations: discovery first, then
// verification, so the destination's stamps bracket the source's.
//
// When dst buffers stores (jclient.Buffered), the replay rides the
// batched wire protocol — one round trip per batch instead of one per
// observation — and Pull flushes the tail before returning. On error the
// returned cursor covers what was already replayed, so a retry resumes
// rather than restarts.
func Pull(dst journal.Sink, src Source, cur Cursor) (Report, Cursor, error) {
	reg := obs.Default()
	reg.Counter("replicate_pulls_total").Inc()
	span := reg.StartSpan("replicate:pull")
	rep, next, err := pull(dst, src, cur)
	if f, ok := dst.(flusher); ok {
		if ferr := f.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	records := reg.CounterVec("replicate_records_total", "kind")
	records.With("interface").Add(int64(rep.Interfaces))
	records.With("gateway").Add(int64(rep.Gateways))
	records.With("subnet").Add(int64(rep.Subnets))
	if err != nil {
		reg.Counter("replicate_errors_total").Inc()
	}
	span.SetAttr("interfaces", strconv.Itoa(rep.Interfaces))
	span.SetAttr("gateways", strconv.Itoa(rep.Gateways))
	span.SetAttr("subnets", strconv.Itoa(rep.Subnets))
	span.End(err)
	return rep, next, err
}

func pull(dst journal.Sink, src Source, cur Cursor) (Report, Cursor, error) {
	var rep Report
	next := cur

	// Interfaces, one page of changes at a time.
	for {
		recs, seq, more, err := src.InterfaceChanges(next.Interfaces, 0)
		if err != nil {
			return rep, next, err
		}
		for _, rec := range recs {
			if err := replayInterface(dst, rec); err != nil {
				return rep, next, err
			}
			rep.Interfaces++
		}
		next.Interfaces = seq
		if !more {
			break
		}
	}

	// Gateways: member interface IDs are source-local, so each is
	// resolved to an address with an indexed per-ID query, cached across
	// the pull — never a full journal scan.
	ipCache := map[journal.ID]pkt.IP{}
	resolve := func(id journal.ID) (pkt.IP, bool, error) {
		if ip, ok := ipCache[id]; ok {
			return ip, ip != 0, nil
		}
		recs, err := src.Interfaces(journal.Query{HasID: true, ByID: id})
		if err != nil {
			return 0, false, err
		}
		var ip pkt.IP
		if len(recs) > 0 {
			ip = recs[0].IP
		}
		ipCache[id] = ip
		return ip, ip != 0, nil
	}
	for {
		recs, seq, more, err := src.GatewayChanges(next.Gateways, 0)
		if err != nil {
			return rep, next, err
		}
		for _, gw := range recs {
			var ips []pkt.IP
			for _, ifID := range gw.Ifaces {
				ip, ok, err := resolve(ifID)
				if err != nil {
					return rep, next, err
				}
				if ok {
					ips = append(ips, ip)
				}
			}
			if len(ips) == 0 && len(gw.Subnets) == 0 {
				continue
			}
			if _, err := dst.StoreGateway(journal.GatewayObs{
				IfaceIPs:     ips,
				Subnets:      gw.Subnets,
				Questionable: gw.Questionable,
				Source:       gw.Sources,
				At:           gw.Stamp.Verified,
			}); err != nil {
				return rep, next, err
			}
			rep.Gateways++
		}
		next.Gateways = seq
		if !more {
			break
		}
	}

	for {
		recs, seq, more, err := src.SubnetChanges(next.Subnets, 0)
		if err != nil {
			return rep, next, err
		}
		for _, sn := range recs {
			if _, err := dst.StoreSubnet(journal.SubnetObs{
				Subnet:    sn.Subnet,
				Metric:    sn.RIPMetric,
				HostCount: sn.HostCount,
				LoAddr:    sn.LoAddr,
				HiAddr:    sn.HiAddr,
				Source:    sn.Sources,
				At:        sn.Stamp.Verified,
			}); err != nil {
				return rep, next, err
			}
			rep.Subnets++
		}
		next.Subnets = seq
		if !more {
			break
		}
	}
	return rep, next, nil
}

// replayInterface replays one interface record into dst as observations.
func replayInterface(dst journal.Sink, rec *journal.InterfaceRec) error {
	obs := journal.IfaceObs{
		IP:             rec.IP,
		Name:           rec.Name,
		RIPSource:      rec.RIPSource,
		RIPPromiscuous: rec.RIPPromiscuous,
		Source:         rec.Sources,
		At:             rec.Stamp.Discovered,
	}
	if !rec.MAC.IsZero() {
		obs.HasMAC, obs.MAC = true, rec.MAC
	}
	if rec.Mask != 0 {
		obs.HasMask, obs.Mask = true, rec.Mask
	}
	if _, _, err := dst.StoreInterface(obs); err != nil {
		return err
	}
	// Re-verify at the source's latest verification time, and carry
	// aliases across.
	obs.At = rec.Stamp.Verified
	if _, _, err := dst.StoreInterface(obs); err != nil {
		return err
	}
	for _, alias := range rec.Aliases {
		if _, _, err := dst.StoreInterface(journal.IfaceObs{
			IP: rec.IP, Name: alias, Source: rec.Sources, At: rec.Stamp.Verified,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Exchange performs a bidirectional pull between two sites: a's changes
// after ab flow to b, then b's changes after ba flow back to a. The
// returned cursors resume the next exchange. Note the second pull re-sends
// records the first just merged into b (they are fresh mutations of b);
// both journals' merge logic makes that replay idempotent.
func Exchange(a, b Source, ab, ba Cursor) (repAB, repBA Report, nextAB, nextBA Cursor, err error) {
	repAB, nextAB, err = Pull(b, a, ab)
	if err != nil {
		return repAB, Report{}, nextAB, ba, err
	}
	repBA, nextBA, err = Pull(a, b, ba)
	return repAB, repBA, nextAB, nextBA, err
}
