package replicate

import (
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/netsim/pkt"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func mac(b byte) pkt.MAC { return pkt.MAC{8, 0, 0x20, 0, 0, b} }

func seedSite(j *journal.Journal, base byte) {
	sn := pkt.SubnetOf(pkt.IPv4(128, 138, base, 0), pkt.MaskBits(24))
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(128, 138, base, 5), HasMAC: true, MAC: mac(base),
		Name: "host.example", HasMask: true, Mask: pkt.MaskBits(24),
		Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(128, 138, base, 5),
		Source: journal.SrcICMP, At: t0.Add(2 * time.Hour)})
	j.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(128, 138, base, 1)},
		Subnets: []pkt.Subnet{sn}, Source: journal.SrcTraceroute, At: t0.Add(time.Hour)})
}

func TestPullCopiesEverything(t *testing.T) {
	src := journal.New()
	seedSite(src, 10)
	dst := journal.New()
	rep, _, err := Pull(journal.Local{J: dst}, journal.Local{J: src}, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces == 0 || rep.Gateways != 1 || rep.Subnets != 1 {
		t.Fatalf("report = %+v", rep)
	}
	recs := dst.Interfaces(journal.Query{ByIP: pkt.IPv4(128, 138, 10, 5), HasIP: true})
	if len(recs) != 1 {
		t.Fatalf("interface not replicated: %v", recs)
	}
	rec := recs[0]
	if rec.MAC != mac(10) || rec.Name != "host.example" || rec.Mask != pkt.MaskBits(24) {
		t.Fatalf("fields lost: %+v", rec)
	}
	// Stamps bracket the source's: discovered at t0, verified at t0+2h.
	if !rec.Stamp.Discovered.Equal(t0) {
		t.Fatalf("Discovered = %v", rec.Stamp.Discovered)
	}
	if !rec.Stamp.Verified.Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("Verified = %v", rec.Stamp.Verified)
	}
	gws := dst.Gateways()
	if len(gws) != 1 || len(gws[0].Subnets) != 1 {
		t.Fatalf("gateway not replicated: %+v", gws)
	}
}

func TestPullMergesWithLocalEvidence(t *testing.T) {
	// Site A saw one interface of a gateway, site B the other; after an
	// exchange plus correlation-by-merge, both journals unify them.
	a, b := journal.New(), journal.New()
	a.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)},
		Source: journal.SrcTraceroute, At: t0})
	b.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1), pkt.IPv4(10, 0, 2, 1)},
		Source: journal.SrcDNS, At: t0})
	if _, _, _, _, err := Exchange(journal.Local{J: a}, journal.Local{J: b}, Cursor{}, Cursor{}); err != nil {
		t.Fatal(err)
	}
	for name, j := range map[string]*journal.Journal{"a": a, "b": b} {
		gws := j.Gateways()
		if len(gws) != 1 {
			t.Fatalf("site %s: gateways = %d, want 1 (merged)", name, len(gws))
		}
		if len(gws[0].Ifaces) != 2 {
			t.Fatalf("site %s: merged gateway has %d interfaces", name, len(gws[0].Ifaces))
		}
		if gws[0].Sources&journal.SrcTraceroute == 0 || gws[0].Sources&journal.SrcDNS == 0 {
			t.Fatalf("site %s: sources not combined: %s", name, gws[0].Sources)
		}
	}
}

func TestPullIsIdempotent(t *testing.T) {
	src, dst := journal.New(), journal.New()
	seedSite(src, 20)
	for i := 0; i < 3; i++ {
		if _, _, err := Pull(journal.Local{J: dst}, journal.Local{J: src}, Cursor{}); err != nil {
			t.Fatal(err)
		}
	}
	if dst.NumInterfaces() != src.NumInterfaces() ||
		dst.NumGateways() != src.NumGateways() ||
		dst.NumSubnets() != src.NumSubnets() {
		t.Fatalf("repeated pulls duplicated records: %d/%d/%d vs %d/%d/%d",
			dst.NumInterfaces(), dst.NumGateways(), dst.NumSubnets(),
			src.NumInterfaces(), src.NumGateways(), src.NumSubnets())
	}
}

func TestPullIncrementalCursor(t *testing.T) {
	// The cursor returned by one pull makes the next pull transfer only
	// what the source mutated in between.
	src, dst := journal.New(), journal.New()
	src.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: journal.SrcICMP, At: t0})
	rep, cur, err := Pull(journal.Local{J: dst}, journal.Local{J: src}, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces != 1 {
		t.Fatalf("first pull copied %d interfaces, want 1", rep.Interfaces)
	}
	src.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 2), Source: journal.SrcICMP, At: t0.Add(48 * time.Hour)})
	rep, cur, err = Pull(journal.Local{J: dst}, journal.Local{J: src}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces != 1 {
		t.Fatalf("incremental pull copied %d interfaces, want 1", rep.Interfaces)
	}
	if cur.Interfaces != src.CurSeq() {
		t.Fatalf("cursor = %d, want source seq %d", cur.Interfaces, src.CurSeq())
	}
}

func TestPullRerunTransfersZero(t *testing.T) {
	// The acceptance criterion: a re-run against an unchanged source
	// transfers zero records — the sequence cursor short-circuits.
	src, dst := journal.New(), journal.New()
	seedSite(src, 50)
	rep, cur, err := Pull(journal.Local{J: dst}, journal.Local{J: src}, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces == 0 || rep.Gateways == 0 || rep.Subnets == 0 {
		t.Fatalf("first pull empty: %+v", rep)
	}
	rep, cur2, err := Pull(journal.Local{J: dst}, journal.Local{J: src}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if rep != (Report{}) {
		t.Fatalf("re-run against unchanged source transferred records: %+v", rep)
	}
	if cur2 != cur {
		t.Fatalf("cursor moved without source mutations: %+v -> %+v", cur, cur2)
	}
}

func TestCursorFileRoundtrip(t *testing.T) {
	path := t.TempDir() + "/cursors"
	want := CursorFile{
		Forward: Cursor{Interfaces: 12, Gateways: 3, Subnets: 4},
		Reverse: Cursor{Interfaces: 7},
	}
	if err := SaveCursors(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCursors(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Forward != want.Forward || got.Reverse != want.Reverse ||
		len(got.ForwardShards) != 0 || len(got.ReverseShards) != 0 {
		t.Fatalf("roundtrip: got %+v, want %+v", got, want)
	}
	// A missing file is the zero cursor, not an error.
	if got, err = LoadCursors(path + ".missing"); err != nil ||
		got.Forward != (Cursor{}) || got.Reverse != (Cursor{}) ||
		len(got.ForwardShards) != 0 || len(got.ReverseShards) != 0 {
		t.Fatalf("missing file: %+v, %v", got, err)
	}
	if _, err := ParseCursor("bogus=1"); err == nil {
		t.Fatal("unknown cursor key accepted")
	}
}

func TestPullOverTCP(t *testing.T) {
	// Two real Journal Servers exchanging over the wire.
	srcJ := journal.New()
	seedSite(srcJ, 30)
	srcSrv := jserver.New(srcJ)
	if err := srcSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()
	dstSrv := jserver.New(nil)
	if err := dstSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dstSrv.Close()

	srcC, err := jclient.Dial(srcSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer srcC.Close()
	dstC, err := jclient.Dial(dstSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dstC.Close()

	rep, cur, err := Pull(dstC, srcC, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces == 0 {
		t.Fatal("nothing replicated over TCP")
	}
	// A cursor re-run over the wire is also a zero-transfer no-op.
	if rep, _, err = Pull(dstC, srcC, cur); err != nil {
		t.Fatal(err)
	}
	if rep != (Report{}) {
		t.Fatalf("TCP re-run transferred records: %+v", rep)
	}
	if dstSrv.Journal().NumInterfaces() != srcJ.NumInterfaces() {
		t.Fatalf("counts differ: %d vs %d",
			dstSrv.Journal().NumInterfaces(), srcJ.NumInterfaces())
	}
}

func TestPullBatchedOverTCP(t *testing.T) {
	// Same exchange as TestPullOverTCP, but the destination buffers stores
	// so the replay rides OpBatch frames; Pull must flush the tail itself.
	srcJ := journal.New()
	seedSite(srcJ, 40)
	seedSite(srcJ, 41)
	srcSrv := jserver.New(srcJ)
	if err := srcSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()
	dstSrv := jserver.New(nil)
	if err := dstSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dstSrv.Close()

	srcC, err := jclient.Dial(srcSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer srcC.Close()
	dstC, err := jclient.Dial(dstSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dstC.Close()

	rep, _, err := Pull(dstC.Buffered(0), srcC, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interfaces == 0 {
		t.Fatal("nothing replicated over batched TCP")
	}
	// Everything arrived, including the final partial batch.
	if got, want := dstSrv.Journal().NumInterfaces(), srcJ.NumInterfaces(); got != want {
		t.Fatalf("interface counts differ: %d vs %d", got, want)
	}
	if got, want := dstSrv.Journal().NumGateways(), srcJ.NumGateways(); got != want {
		t.Fatalf("gateway counts differ: %d vs %d", got, want)
	}
	if got, want := dstSrv.Journal().NumSubnets(), srcJ.NumSubnets(); got != want {
		t.Fatalf("subnet counts differ: %d vs %d", got, want)
	}
	// The batched pull converges to the same journal as a record-at-a-time
	// pull into a fresh local journal.
	plain := journal.New()
	if _, _, err := Pull(journal.Local{J: plain}, srcC, Cursor{}); err != nil {
		t.Fatal(err)
	}
	if got, want := dstSrv.Journal().NumInterfaces(), plain.NumInterfaces(); got != want {
		t.Fatalf("batched pull diverged from plain pull: %d vs %d interfaces", got, want)
	}
}
