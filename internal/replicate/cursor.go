package replicate

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// CursorFile is the pair of replication cursors fremont-sync persists
// between runs: forward covers -from → -to progress, reverse the return
// direction of a bidirectional exchange (zero when unused).
type CursorFile struct {
	Forward Cursor
	Reverse Cursor
}

// ParseCursor parses the "interfaces=N gateways=N subnets=N" form
// produced by Cursor.String. Unknown keys are rejected; missing keys
// stay zero.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("replicate: cursor field %q is not key=value", field)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return c, fmt.Errorf("replicate: cursor field %q: %v", field, err)
		}
		switch key {
		case "interfaces":
			c.Interfaces = n
		case "gateways":
			c.Gateways = n
		case "subnets":
			c.Subnets = n
		default:
			return c, fmt.Errorf("replicate: unknown cursor key %q", key)
		}
	}
	return c, nil
}

// LoadCursors reads a cursor file. A missing file is not an error: it
// returns the zero CursorFile, meaning "replicate from the beginning" —
// exactly what a first run needs.
func LoadCursors(path string) (CursorFile, error) {
	var cf CursorFile
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return cf, nil
	}
	if err != nil {
		return cf, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dir, rest, ok := strings.Cut(line, " ")
		if !ok {
			return cf, fmt.Errorf("replicate: cursor line %q has no direction", line)
		}
		cur, err := ParseCursor(rest)
		if err != nil {
			return cf, err
		}
		switch dir {
		case "forward":
			cf.Forward = cur
		case "reverse":
			cf.Reverse = cur
		default:
			return cf, fmt.Errorf("replicate: unknown cursor direction %q", dir)
		}
	}
	return cf, sc.Err()
}

// SaveCursors writes the cursor file via a temp file and rename, so a
// crash mid-write leaves the previous cursors intact (a stale cursor only
// costs a re-transfer; a torn one would be rejected on load).
func SaveCursors(path string, cf CursorFile) error {
	data := fmt.Sprintf("# fremont-sync replication cursors; do not edit while a sync runs\nforward %s\nreverse %s\n",
		cf.Forward, cf.Reverse)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
