package replicate

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// CursorFile is the set of replication cursors fremont-sync persists
// between runs: forward covers -from → -to progress, reverse the return
// direction of a bidirectional exchange (zero when unused). Against a
// fabric source the cursors are keyed by (shard, kind) instead —
// ForwardShards/ReverseShards hold one Cursor per shard ID — because a
// fabric shard's modification sequences are shard-local and a single
// cursor would collide across shards. Both layouts share one file
// format: a shard line is a plain cursor line with a leading shard=<id>
// field, so legacy single-server files load unchanged.
type CursorFile struct {
	Forward Cursor
	Reverse Cursor

	ForwardShards FabricCursor
	ReverseShards FabricCursor
}

// ParseCursor parses the "interfaces=N gateways=N subnets=N" form
// produced by Cursor.String. Unknown keys are rejected; missing keys
// stay zero.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("replicate: cursor field %q is not key=value", field)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return c, fmt.Errorf("replicate: cursor field %q: %v", field, err)
		}
		switch key {
		case "interfaces":
			c.Interfaces = n
		case "gateways":
			c.Gateways = n
		case "subnets":
			c.Subnets = n
		default:
			return c, fmt.Errorf("replicate: unknown cursor key %q", key)
		}
	}
	return c, nil
}

// LoadCursors reads a cursor file. A missing file is not an error: it
// returns the zero CursorFile, meaning "replicate from the beginning" —
// exactly what a first run needs.
func LoadCursors(path string) (CursorFile, error) {
	var cf CursorFile
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return cf, nil
	}
	if err != nil {
		return cf, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dir, rest, ok := strings.Cut(line, " ")
		if !ok {
			return cf, fmt.Errorf("replicate: cursor line %q has no direction", line)
		}
		// A fabric line carries a leading shard=<id> field; strip it and
		// route the rest into the per-shard map.
		shard := ""
		if first, tail, _ := strings.Cut(rest, " "); strings.HasPrefix(first, "shard=") {
			shard = strings.TrimPrefix(first, "shard=")
			if shard == "" {
				return cf, fmt.Errorf("replicate: cursor line %q has empty shard", line)
			}
			rest = tail
		}
		cur, err := ParseCursor(rest)
		if err != nil {
			return cf, err
		}
		switch dir {
		case "forward":
			if shard != "" {
				if cf.ForwardShards == nil {
					cf.ForwardShards = FabricCursor{}
				}
				cf.ForwardShards[shard] = cur
			} else {
				cf.Forward = cur
			}
		case "reverse":
			if shard != "" {
				if cf.ReverseShards == nil {
					cf.ReverseShards = FabricCursor{}
				}
				cf.ReverseShards[shard] = cur
			} else {
				cf.Reverse = cur
			}
		default:
			return cf, fmt.Errorf("replicate: unknown cursor direction %q", dir)
		}
	}
	return cf, sc.Err()
}

// SaveCursors writes the cursor file via a temp file and rename, so a
// crash mid-write leaves the previous cursors intact (a stale cursor only
// costs a re-transfer; a torn one would be rejected on load).
func SaveCursors(path string, cf CursorFile) error {
	var b strings.Builder
	b.WriteString("# fremont-sync replication cursors; do not edit while a sync runs\n")
	fmt.Fprintf(&b, "forward %s\nreverse %s\n", cf.Forward, cf.Reverse)
	writeShards := func(dir string, fc FabricCursor) {
		ids := make([]string, 0, len(fc))
		for id := range fc {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s shard=%s %s\n", dir, id, fc[id])
		}
	}
	writeShards("forward", cf.ForwardShards)
	writeShards("reverse", cf.ReverseShards)
	data := b.String()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
