package replicate

import (
	"errors"
	"os"
	"strings"
	"testing"

	"fremont/internal/fabric"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// stripedSite builds a 3-shard fabric's worth of journals: striped ID
// allocation, records routed by the same hash the fabric client uses.
func stripedSite(t *testing.T, n, records int) ([]*journal.Journal, []ShardSource) {
	t.Helper()
	ring := fabric.NewRing(n, 0)
	js := make([]*journal.Journal, n)
	for i := range js {
		js[i] = journal.New()
		js[i].SetIDStride(journal.ID(i), journal.ID(n))
	}
	for k := 0; k < records; k++ {
		ip := pkt.IPv4(10, byte(k/256), byte(k%256), 5)
		shard := ring.Lookup(fabric.IfaceKey(ip))
		js[shard].StoreInterface(journal.IfaceObs{IP: ip, Source: journal.SrcARP, At: t0})
	}
	srcs := make([]ShardSource, n)
	for i, j := range js {
		srcs[i] = ShardSource{ID: fabric.ShardID(i), Src: journal.Local{J: j}}
	}
	return js, srcs
}

// TestPullFabric: every shard's records land in the destination, and a
// second pull against the unchanged fabric transfers zero records —
// the fabric-wide re-pull-transfers-zero invariant.
func TestPullFabric(t *testing.T) {
	const K = 50
	js, srcs := stripedSite(t, 3, K)
	dst := journal.New()

	rep, cur, err := PullFabric(journal.Local{J: dst}, srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Total().Interfaces; got != K {
		t.Fatalf("first pull moved %d interfaces, want %d", got, K)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("skipped shards on a healthy pull: %v", rep.Skipped)
	}
	if dst.NumInterfaces() != K {
		t.Fatalf("destination has %d interfaces, want %d", dst.NumInterfaces(), K)
	}

	// Re-pull: zero records, per shard.
	rep2, cur2, err := PullFabric(journal.Local{J: dst}, srcs, cur)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range rep2.Shards {
		if r.Interfaces+r.Gateways+r.Subnets != 0 {
			t.Errorf("%s re-pull transferred %+v, want zero", id, r)
		}
	}
	// One shard mutates; only its delta moves.
	js[1].StoreInterface(journal.IfaceObs{IP: pkt.IPv4(192, 168, 0, 1), Source: journal.SrcARP, At: t0})
	rep3, _, err := PullFabric(journal.Local{J: dst}, srcs, cur2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep3.Total().Interfaces; got != 1 {
		t.Errorf("delta pull moved %d, want 1", got)
	}
	if r := rep3.Shards[fabric.ShardID(1)]; r.Interfaces != 1 {
		t.Errorf("shard1 delta = %+v", r)
	}
}

// errSource fails every call — a down shard.
type errSource struct{ journal.Local }

var errDown = errors.New("connection refused")

func (errSource) InterfaceChanges(after uint64, limit int) ([]*journal.InterfaceRec, uint64, bool, error) {
	return nil, after, false, errDown
}

// TestPullFabricDownShard: a down shard is skipped with its cursor held,
// the others replicate, and when it returns the next pull closes exactly
// its gap with no duplicates.
func TestPullFabricDownShard(t *testing.T) {
	const K = 40
	js, srcs := stripedSite(t, 3, K)
	dst := journal.New()
	down := srcs[1]
	srcs[1] = ShardSource{ID: down.ID, Src: errSource{journal.Local{J: js[1]}}}

	rep, cur, err := PullFabric(journal.Local{J: dst}, srcs, nil)
	if err != nil {
		t.Fatalf("degraded pull errored: %v", err)
	}
	if _, skipped := rep.Skipped[down.ID]; !skipped {
		t.Fatalf("down shard not reported: %+v", rep)
	}
	shard1Records := js[1].NumInterfaces()
	if got := rep.Total().Interfaces; got != K-shard1Records {
		t.Errorf("degraded pull moved %d, want %d", got, K-shard1Records)
	}

	// Shard recovers: the follow-up pull transfers exactly its records.
	srcs[1] = down
	rep2, cur2, err := PullFabric(journal.Local{J: dst}, srcs, cur)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep2.Total().Interfaces; got != shard1Records {
		t.Errorf("gap-closing pull moved %d, want %d", got, shard1Records)
	}
	if dst.NumInterfaces() != K {
		t.Errorf("destination has %d interfaces, want %d (no loss, no dups)", dst.NumInterfaces(), K)
	}
	// And the fabric is quiet again.
	rep3, _, err := PullFabric(journal.Local{J: dst}, srcs, cur2)
	if err != nil || rep3.Total().Interfaces != 0 {
		t.Errorf("post-recovery re-pull: %+v, %v", rep3, err)
	}
}

// TestPullFabricAllDown: the pull fails (with the first shard error)
// when no shard answers.
func TestPullFabricAllDown(t *testing.T) {
	js, srcs := stripedSite(t, 2, 10)
	for i := range srcs {
		srcs[i].Src = errSource{journal.Local{J: js[i]}}
	}
	if _, _, err := PullFabric(journal.Local{J: journal.New()}, srcs, nil); err == nil {
		t.Fatal("all-down pull succeeded")
	}
}

// TestCursorFileShardKeys: shard-keyed cursor lines roundtrip alongside
// the plain forward/reverse pair, and legacy files (no shard lines)
// still load.
func TestCursorFileShardKeys(t *testing.T) {
	path := t.TempDir() + "/cursors"
	want := CursorFile{
		Forward: Cursor{Interfaces: 1},
		ForwardShards: FabricCursor{
			"shard0": {Interfaces: 10, Gateways: 2},
			"shard1": {Interfaces: 20, Subnets: 3},
			"shard2": {},
		},
		ReverseShards: FabricCursor{"shard0": {Interfaces: 5}},
	}
	if err := SaveCursors(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCursors(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Forward != want.Forward || got.Reverse != want.Reverse {
		t.Fatalf("plain cursors: %+v", got)
	}
	if len(got.ForwardShards) != 3 || got.ForwardShards["shard0"] != want.ForwardShards["shard0"] ||
		got.ForwardShards["shard1"] != want.ForwardShards["shard1"] || got.ForwardShards["shard2"] != (Cursor{}) {
		t.Fatalf("forward shards: %+v", got.ForwardShards)
	}
	if len(got.ReverseShards) != 1 || got.ReverseShards["shard0"] != want.ReverseShards["shard0"] {
		t.Fatalf("reverse shards: %+v", got.ReverseShards)
	}

	// Legacy file: plain lines only, parsed exactly as before.
	legacy := path + ".legacy"
	if err := os.WriteFile(legacy, []byte("# old file\nforward interfaces=7 gateways=1 subnets=2\nreverse interfaces=3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lf, err := LoadCursors(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Forward != (Cursor{Interfaces: 7, Gateways: 1, Subnets: 2}) || lf.Reverse != (Cursor{Interfaces: 3}) {
		t.Fatalf("legacy load: %+v", lf)
	}
	if len(lf.ForwardShards) != 0 || len(lf.ReverseShards) != 0 {
		t.Fatalf("legacy file grew shard cursors: %+v", lf)
	}

	// Malformed shard token is an error, not silent misparse.
	badPath := path + ".bad"
	if err := os.WriteFile(badPath, []byte("forward shard= interfaces=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCursors(badPath); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("empty shard token: err = %v", err)
	}
}
