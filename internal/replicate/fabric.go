package replicate

import (
	"fmt"
	"sort"
	"strings"

	"fremont/internal/journal"
)

// ShardSource names one fabric shard as a replication source. ID is the
// stable shard name (fabric.ShardID order: "shard0", "shard1", …); Src
// is any replication source for that shard — typically a jclient.Client
// or Pool dialed at the shard's address.
type ShardSource struct {
	ID  string
	Src Source
}

// FabricCursor tracks replication progress per shard: each shard has its
// own modification-sequence space, so each gets its own Cursor, keyed by
// shard ID. Shards absent from the map start from the beginning. nil is
// the zero cursor for any fabric.
type FabricCursor map[string]Cursor

// Clone returns a copy; mutating the copy leaves the original intact.
func (fc FabricCursor) Clone() FabricCursor {
	out := make(FabricCursor, len(fc))
	for k, v := range fc {
		out[k] = v
	}
	return out
}

func (fc FabricCursor) String() string {
	ids := make([]string, 0, len(fc))
	for id := range fc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("shard=%s %s", id, fc[id])
	}
	return strings.Join(parts, "; ")
}

// FabricReport summarizes one fabric pull: per-shard record counts plus
// the shards that could not be reached this round. A skipped shard's
// cursor is unchanged, so the next pull picks up exactly where it left
// off — an outage delays that shard's records, never loses them.
type FabricReport struct {
	Shards  map[string]Report
	Skipped map[string]error
}

// Total sums the per-shard reports.
func (fr FabricReport) Total() Report {
	var t Report
	for _, r := range fr.Shards {
		t.Interfaces += r.Interfaces
		t.Gateways += r.Gateways
		t.Subnets += r.Subnets
	}
	return t
}

func (fr FabricReport) String() string {
	t := fr.Total()
	s := fmt.Sprintf("replicate: %d shards: %d interfaces, %d gateways, %d subnets pulled",
		len(fr.Shards), t.Interfaces, t.Gateways, t.Subnets)
	if len(fr.Skipped) > 0 {
		ids := make([]string, 0, len(fr.Skipped))
		for id := range fr.Skipped {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		s += fmt.Sprintf(" (skipped: %s)", strings.Join(ids, ", "))
	}
	return s
}

// PullFabric replicates every shard of a journal fabric into dst,
// iterating per-shard cursors so re-pull-transfers-zero holds fabric-wide:
// a second pull against an unchanged fabric moves no records and costs
// each shard O(1) per kind. Shards pull independently — a down shard is
// recorded in the report's Skipped map with its cursor held back
// (including partial progress, since Pull returns how far it got), while
// the others complete. The error is non-nil only when every shard
// failed; degraded pulls succeed with Skipped naming the gaps.
func PullFabric(dst journal.Sink, srcs []ShardSource, cur FabricCursor) (FabricReport, FabricCursor, error) {
	rep := FabricReport{Shards: map[string]Report{}, Skipped: map[string]error{}}
	next := cur.Clone()
	var firstErr error
	for _, s := range srcs {
		r, c, err := Pull(dst, s.Src, cur[s.ID])
		next[s.ID] = c // Pull's cursor covers what replayed even on error
		if err != nil {
			rep.Skipped[s.ID] = err
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", s.ID, err)
			}
			continue
		}
		rep.Shards[s.ID] = r
	}
	if len(rep.Shards) == 0 && firstErr != nil {
		return rep, next, firstErr
	}
	return rep, next, nil
}
