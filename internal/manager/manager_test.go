package manager

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
	"fremont/internal/simstack"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func TestDueAndScheduling(t *testing.T) {
	j := journal.New()
	m := New(journal.Local{J: j}, Config{Privileged: true})
	due := m.Due(t0)
	if len(due) != 8 {
		t.Fatalf("initially due modules = %d, want all 8", len(due))
	}
	// Mark everything as just run.
	for _, mod := range due {
		m.State(mod.Info().Name).LastRun = t0
	}
	if len(m.Due(t0.Add(time.Minute))) != 0 {
		t.Fatal("modules due immediately after running")
	}
	// ARPwatch (min interval 2h) comes due first.
	next, ok := m.NextDue()
	if !ok {
		t.Fatal("NextDue found nothing")
	}
	if want := t0.Add(2 * time.Hour); !next.Equal(want) {
		t.Fatalf("NextDue = %v, want %v", next, want)
	}
}

func TestUnprivilegedSkipsWatchers(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: false})
	for _, mod := range m.Due(t0) {
		if mod.Info().NeedsPrivilege {
			t.Fatalf("unprivileged manager scheduled %s", mod.Info().Name)
		}
	}
}

func TestAdaptiveIntervals(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	st := m.State("SubnetMasks")
	info := explorer.SubnetMasks{}.Info()
	start := st.Interval

	// Fruitless run: interval doubles (but not past max).
	m.adjust(st, info, false)
	if st.Interval != start*2 {
		t.Fatalf("fruitless adjust: %v, want %v", st.Interval, start*2)
	}
	for i := 0; i < 10; i++ {
		m.adjust(st, info, false)
	}
	if st.Interval != info.MaxInterval {
		t.Fatalf("interval %v exceeded max %v", st.Interval, info.MaxInterval)
	}
	// Fruitful runs shrink back to min.
	for i := 0; i < 10; i++ {
		m.adjust(st, info, true)
	}
	if st.Interval != info.MinInterval {
		t.Fatalf("interval %v below min %v", st.Interval, info.MinInterval)
	}
}

func TestHistoryRoundtrip(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	m.State("SeqPing").LastRun = t0
	m.State("SeqPing").Runs = 3
	m.State("SeqPing").LastFound = 42
	m.State("SeqPing").DemandBefore = 7
	m.State("SeqPing").Interval = 36 * time.Hour

	var buf bytes.Buffer
	if err := m.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	if err := m2.ReadHistory(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	st := m2.State("SeqPing")
	if !st.LastRun.Equal(t0) || st.Runs != 3 || st.LastFound != 42 ||
		st.DemandBefore != 7 || st.Interval != 36*time.Hour {
		t.Fatalf("restored state = %+v", st)
	}
}

func TestHistoryRejectsGarbage(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{})
	if err := m.ReadHistory(strings.NewReader("module Bogus\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Comments and unknown modules are fine.
	ok := "# comment\nmodule NotAModule interval 1h lastrun - demand 0 runs 0 found 0\n"
	if err := m.ReadHistory(strings.NewReader(ok)); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history")
	m := New(journal.Local{J: journal.New()}, Config{HistoryPath: path, Privileged: true})
	m.State("DNS").Runs = 9
	if err := m.SaveHistory(); err != nil {
		t.Fatal(err)
	}
	m2 := New(journal.Local{J: journal.New()}, Config{HistoryPath: path, Privileged: true})
	if err := m2.LoadHistory(); err != nil {
		t.Fatal(err)
	}
	if m2.State("DNS").Runs != 9 {
		t.Fatalf("Runs = %d, want 9", m2.State("DNS").Runs)
	}
	// Missing file is not an error.
	m3 := New(journal.Local{J: journal.New()}, Config{HistoryPath: filepath.Join(dir, "nope")})
	if err := m3.LoadHistory(); err != nil {
		t.Fatal(err)
	}
}

func TestSubnetMaskDirection(t *testing.T) {
	j := journal.New()
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: journal.SrcICMP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 2), HasMask: true,
		Mask: pkt.MaskBits(24), Source: journal.SrcICMP, At: t0})
	m := New(journal.Local{J: j}, Config{})
	p := m.direct(explorer.SubnetMasks{})
	if len(p.Addresses) != 1 || p.Addresses[0] != pkt.IPv4(10, 0, 0, 1) {
		t.Fatalf("direction = %v, want just the unmasked interface", p.Addresses)
	}
}

// TestRunDueOnMiniNetwork drives the manager end-to-end on a small
// simulated department: the unprivileged active modules run, write to the
// journal, and the schedule updates.
func TestRunDueOnMiniNetwork(t *testing.T) {
	cfg := campus.DefaultConfig()
	cfg.CSHosts = 10
	cfg.CSStaleDNS = 1
	cfg.Chatter = false
	cfg.Liveness = false
	c := campus.BuildDepartment(cfg)
	j := journal.New()
	m := New(journal.Local{J: j}, Config{
		Privileged: true,
		Network:    pkt.SubnetOf(pkt.IPv4(128, 138, 0, 0), pkt.MaskBits(16)),
		DNSServer:  c.DNSServerIP,
		Correlate:  true,
		// Short watches so the batch completes quickly.
		ARPwatchDuration: time.Minute,
		RIPwatchDuration: time.Minute,
	})
	var reports []*explorer.Report
	var err error
	var dueAfter int
	c.Net.Sched.Spawn("manager", func(p *sim.Proc) {
		st := simstack.New(c.Fremont, p, true)
		reports, err = m.RunDue(st)
		dueAfter = len(m.Due(st.Now()))
	})
	c.Net.Run(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("reports = %d, want 8 (all modules ran)", len(reports))
	}
	if j.NumInterfaces() == 0 {
		t.Fatal("no interfaces discovered")
	}
	for _, mod := range explorer.All() {
		st := m.State(mod.Info().Name)
		if st.Runs != 1 {
			t.Fatalf("%s Runs = %d, want 1", mod.Info().Name, st.Runs)
		}
		if st.LastRun.IsZero() {
			t.Fatalf("%s LastRun not set", mod.Info().Name)
		}
	}
	// Nothing is due right after the batch finishes.
	if dueAfter != 0 {
		t.Fatalf("modules due immediately after a full batch: %d", dueAfter)
	}
	_ = netsim.New // keep import shape stable
}
