// Package manager implements Fremont's Discovery Manager: it "decides what
// information needs to be collected and what Explorer Modules should be
// invoked to collect those data", keeps a startup/history file with each
// module's invocation frequency and recent runs, directs modules with
// clues from the Journal (RIP-discovered subnets feed Traceroute; unmasked
// interfaces feed the SubnetMasks module), and adapts each module's
// interval to how fruitful its runs are: "if the Discovery Manager sees
// that 20 of 400 interfaces recorded in the Journal do not have subnet
// masks recorded and that this was true before the 'subnet mask' module
// was last invoked, then the Discovery Manager will not shorten the
// interval until the next invocation of that module."
package manager

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fremont/internal/correlate"
	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
)

// ModuleState is the per-module schedule entry of the startup/history
// file.
type ModuleState struct {
	Name     string
	Interval time.Duration
	LastRun  time.Time
	// DemandBefore is the unmet-demand metric measured just before the
	// last run (the paper's "this was true before the module was last
	// invoked").
	DemandBefore int
	Runs         int
	LastFound    int
}

// Config directs the manager.
type Config struct {
	// Network and DNSServer direct the DNS module.
	Network   pkt.Subnet
	DNSServer pkt.IP
	// WatchDuration bounds each passive-module invocation (default: 30
	// minutes for ARPwatch, 2 minutes for RIPwatch).
	ARPwatchDuration time.Duration
	RIPwatchDuration time.Duration
	// HistoryPath persists the startup/history file ("" = in-memory only).
	HistoryPath string
	// Privileged enables the NIT-based modules.
	Privileged bool
	// Correlate runs a cross-correlation pass after each batch.
	Correlate bool
	Log       func(format string, args ...any)
	// Obs receives scheduling metrics (fruitful/fruitless run counters,
	// interval adjustments, per-module demand gauges) and one span per
	// module run. Nil uses the process-wide obs.Default().
	Obs *obs.Registry
}

// Manager schedules and directs Explorer Modules.
type Manager struct {
	cfg     Config
	sink    journal.Sink
	modules []explorer.Module
	states  map[string]*ModuleState

	// Scheduling instrumentation — the paper's fruitfulness feedback
	// loop, made scrapeable.
	obs        *obs.Registry
	runs       *obs.CounterVec
	fruitful   *obs.Counter
	fruitless  *obs.Counter
	failures   *obs.Counter
	shortened  *obs.Counter
	lengthened *obs.Counter
	demand     *obs.GaugeVec
}

// New creates a manager over the full module registry.
func New(sink journal.Sink, cfg Config) *Manager {
	if cfg.ARPwatchDuration == 0 {
		cfg.ARPwatchDuration = 30 * time.Minute
	}
	if cfg.RIPwatchDuration == 0 {
		cfg.RIPwatchDuration = 2 * time.Minute
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	m := &Manager{
		cfg:        cfg,
		sink:       sink,
		modules:    explorer.All(),
		states:     map[string]*ModuleState{},
		obs:        reg,
		runs:       reg.CounterVec("manager_runs_total", "module"),
		fruitful:   reg.Counter("manager_fruitful_runs_total"),
		fruitless:  reg.Counter("manager_fruitless_runs_total"),
		failures:   reg.Counter("manager_module_failures_total"),
		shortened:  reg.Counter("manager_interval_shortened_total"),
		lengthened: reg.Counter("manager_interval_lengthened_total"),
		demand:     reg.GaugeVec("manager_demand", "module"),
	}
	for _, mod := range m.modules {
		info := mod.Info()
		m.states[info.Name] = &ModuleState{Name: info.Name, Interval: info.MinInterval}
	}
	return m
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Log != nil {
		m.cfg.Log(format, args...)
	}
}

// State returns the schedule entry for a module (nil if unknown).
func (m *Manager) State(name string) *ModuleState { return m.states[name] }

// Due returns the modules whose next invocation time has arrived, skipping
// privileged modules when the manager lacks privilege.
func (m *Manager) Due(now time.Time) []explorer.Module {
	var due []explorer.Module
	for _, mod := range m.modules {
		info := mod.Info()
		if info.NeedsPrivilege && !m.cfg.Privileged {
			continue
		}
		st := m.states[info.Name]
		if st.LastRun.IsZero() || !now.Before(st.LastRun.Add(st.Interval)) {
			due = append(due, mod)
		}
	}
	return due
}

// NextDue returns the earliest next invocation time across modules.
func (m *Manager) NextDue() (time.Time, bool) {
	var next time.Time
	found := false
	for _, mod := range m.modules {
		info := mod.Info()
		if info.NeedsPrivilege && !m.cfg.Privileged {
			continue
		}
		st := m.states[info.Name]
		t := st.LastRun.Add(st.Interval)
		if st.LastRun.IsZero() {
			return time.Time{}, true // something never ran: due now
		}
		if !found || t.Before(next) {
			next = t
			found = true
		}
	}
	return next, found
}

// demandOf computes a module's unmet-demand metric from the Journal.
// Falling demand after a run means the run was fruitful.
func (m *Manager) demandOf(mod explorer.Module) int {
	// Demands are counts, so the records stream through one page at a time
	// and never accumulate (the manager may sit on the far side of a
	// Journal Server from a very large journal).
	switch mod.Info().Name {
	case "SubnetMasks":
		n := 0
		if journal.EachInterface(m.sink, journal.Query{}, func(r *journal.InterfaceRec) error {
			if r.Mask == 0 && r.MaskProbeFails < 3 {
				n++
			}
			return nil
		}) != nil {
			return 0
		}
		return n
	case "Traceroute":
		n := 0
		if journal.EachSubnet(m.sink, func(sn *journal.SubnetRec) error {
			if len(sn.Gateways) == 0 {
				n++
			}
			return nil
		}) != nil {
			return 0
		}
		return n
	case "DNS":
		n := 0
		if journal.EachInterface(m.sink, journal.Query{}, func(r *journal.InterfaceRec) error {
			if r.Name == "" {
				n++
			}
			return nil
		}) != nil {
			return 0
		}
		return n
	default:
		// Discovery modules: demand falls as the interface population
		// grows, so use the negated count.
		n := 0
		if journal.EachInterface(m.sink, journal.Query{}, func(*journal.InterfaceRec) error {
			n++
			return nil
		}) != nil {
			return 0
		}
		return -n
	}
}

// direct builds a module's Params from the Journal and configuration.
func (m *Manager) direct(mod explorer.Module) explorer.Params {
	var p explorer.Params
	switch mod.Info().Name {
	case "ARPwatch":
		p.Duration = m.cfg.ARPwatchDuration
	case "RIPwatch":
		p.Duration = m.cfg.RIPwatchDuration
	case "DNS":
		p.Network = m.cfg.Network
		p.DNSServer = m.cfg.DNSServer
	case "SubnetMasks":
		// Address interfaces lacking masks (the module would do this
		// itself; the manager is where the paper puts the decision),
		// skipping interfaces whose mask requests have gone unanswered
		// three times — the negative cache.
		_ = journal.EachInterface(m.sink, journal.Query{}, func(r *journal.InterfaceRec) error {
			if r.Mask == 0 && r.MaskProbeFails < 3 {
				p.Addresses = append(p.Addresses, r.IP)
			}
			return nil
		})
	}
	return p
}

// runPriority orders a batch so that clue producers run before clue
// consumers: RIPwatch's subnet advertisements direct Traceroute ("The
// collected data is ... used as clues for further discovery probes"), and
// the probes populate the interfaces the SubnetMasks and DNS modules work
// over.
var runPriority = map[string]int{
	"RIPwatch":       0,
	"ARPwatch":       1,
	"EtherHostProbe": 2,
	"SeqPing":        3,
	"BroadcastPing":  4,
	"Traceroute":     5,
	"SubnetMasks":    6,
	"DNS":            7,
}

// RunDue runs every due module once, sequentially, followed by an optional
// correlation pass. It returns the reports and updates the schedule.
func (m *Manager) RunDue(st explorer.Stack) ([]*explorer.Report, error) {
	now := st.Now()
	due := m.Due(now)
	sort.SliceStable(due, func(i, j int) bool {
		return runPriority[due[i].Info().Name] < runPriority[due[j].Info().Name]
	})
	var reports []*explorer.Report
	for _, mod := range due {
		info := mod.Info()
		state := m.states[info.Name]
		before := m.demandOf(mod)
		st.ResetPacketCounter()
		m.logf("manager: running %s (interval %v, demand %d)", info.Name, state.Interval, before)
		started := st.Now()
		span := obs.Span{
			Name:  "module:" + info.Name,
			Start: started, // virtual clock: spans carry simulated time
			Attrs: map[string]string{
				"module":        info.Name,
				"demand_before": strconv.Itoa(before),
			},
		}
		m.runs.With(info.Name).Inc()
		rep, err := mod.Run(&explorer.Context{
			Stack:   st,
			Journal: m.sink,
			Params:  m.direct(mod),
			Log:     m.cfg.Log,
		})
		if err != nil {
			m.logf("manager: %s failed: %v", info.Name, err)
			m.failures.Inc()
			state.LastRun = st.Now()
			m.adjust(state, info, false)
			span.End, span.Err = st.Now(), err.Error()
			m.obs.RecordSpan(span)
			continue
		}
		reports = append(reports, rep)
		after := m.demandOf(mod)
		fruitful := after < before || state.Runs == 0
		state.LastRun = st.Now()
		state.Runs++
		state.LastFound = len(rep.Interfaces) + len(rep.Subnets)
		state.DemandBefore = before
		m.adjust(state, info, fruitful)
		if fruitful {
			m.fruitful.Inc()
		} else {
			m.fruitless.Inc()
		}
		m.demand.With(info.Name).Set(int64(after))
		span.End = st.Now()
		span.Attrs["demand_after"] = strconv.Itoa(after)
		span.Attrs["fruitful"] = strconv.FormatBool(fruitful)
		span.Attrs["found"] = strconv.Itoa(state.LastFound)
		span.Attrs["packets"] = strconv.Itoa(rep.PacketsSent)
		span.Attrs["interval"] = state.Interval.String()
		m.obs.RecordSpan(span)
	}
	if m.cfg.Correlate && len(reports) > 0 {
		if rep, err := correlate.Run(m.sink, st.Now()); err == nil {
			m.logf("manager: %s", rep)
		}
	}
	if m.cfg.HistoryPath != "" {
		if err := m.SaveHistory(); err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// adjust applies the adaptive-interval rule: fruitful runs shorten the
// interval toward the module's minimum; fruitless ones lengthen it toward
// the maximum.
func (m *Manager) adjust(st *ModuleState, info explorer.Info, fruitful bool) {
	before := st.Interval
	if fruitful {
		st.Interval /= 2
		if st.Interval < info.MinInterval {
			st.Interval = info.MinInterval
		}
	} else {
		st.Interval *= 2
		if st.Interval > info.MaxInterval {
			st.Interval = info.MaxInterval
		}
	}
	switch {
	case st.Interval < before:
		m.shortened.Inc()
	case st.Interval > before:
		m.lengthened.Inc()
	}
}

// --- Startup/history file -------------------------------------------------

// SaveHistory writes the startup/history file.
func (m *Manager) SaveHistory() error {
	f, err := os.Create(m.cfg.HistoryPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.WriteHistory(f)
}

// WriteHistory serializes the schedule in the startup/history format:
// one "module" line per entry carrying key=value fields that readers
// parse by name, so adding a field never shifts (and silently misparses)
// its neighbours the way the old positional format could.
func (m *Manager) WriteHistory(w io.Writer) error {
	names := make([]string, 0, len(m.states))
	for n := range m.states {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "# fremont discovery manager startup/history file")
	for _, n := range names {
		st := m.states[n]
		last := "-"
		if !st.LastRun.IsZero() {
			last = st.LastRun.UTC().Format(time.RFC3339)
		}
		if _, err := fmt.Fprintf(w, "module name=%s interval=%s lastrun=%s demand=%d runs=%d found=%d\n",
			st.Name, st.Interval, last, st.DemandBefore, st.Runs, st.LastFound); err != nil {
			return err
		}
	}
	return nil
}

// LoadHistory reads the startup/history file, if present.
func (m *Manager) LoadHistory() error {
	f, err := os.Open(m.cfg.HistoryPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return m.ReadHistory(f)
}

// ReadHistory parses the startup/history format. Lines whose fields
// carry key=value pairs are parsed by name (unknown keys are ignored, so
// newer files load on older managers); lines without any "=" load
// through the legacy 12-positional-field parser, so pre-existing history
// files keep working.
func (m *Manager) ReadHistory(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "module" {
			return fmt.Errorf("manager: malformed history line: %q", line)
		}
		var err error
		if strings.Contains(fields[1], "=") {
			err = m.readKeyValueLine(line, fields[1:])
		} else {
			err = m.readPositionalLine(line, fields)
		}
		if err != nil {
			return err
		}
	}
	return sc.Err()
}

// readKeyValueLine loads one key=value history line.
func (m *Manager) readKeyValueLine(line string, pairs []string) error {
	kv := make(map[string]string, len(pairs))
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			return fmt.Errorf("manager: malformed history field %q in %q", p, line)
		}
		kv[k] = v
	}
	name, ok := kv["name"]
	if !ok {
		return fmt.Errorf("manager: history line missing name: %q", line)
	}
	st, ok := m.states[name]
	if !ok {
		return nil // unknown module: ignore (forward compatibility)
	}
	if v, ok := kv["interval"]; ok {
		iv, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("manager: bad interval in %q: %v", line, err)
		}
		st.Interval = iv
	}
	if v, ok := kv["lastrun"]; ok && v != "-" {
		ts, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return fmt.Errorf("manager: bad lastrun in %q: %v", line, err)
		}
		st.LastRun = ts
	}
	for key, dst := range map[string]*int{
		"demand": &st.DemandBefore, "runs": &st.Runs, "found": &st.LastFound,
	} {
		if v, ok := kv[key]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("manager: bad %s in %q: %v", key, line, err)
			}
			*dst = n
		}
	}
	return nil
}

// readPositionalLine loads one legacy positional history line
// ("module NAME interval IV lastrun TS demand D runs R found F").
func (m *Manager) readPositionalLine(line string, fields []string) error {
	if len(fields) != 12 {
		return fmt.Errorf("manager: malformed history line: %q", line)
	}
	st, ok := m.states[fields[1]]
	if !ok {
		return nil // unknown module: ignore (forward compatibility)
	}
	iv, err := time.ParseDuration(fields[3])
	if err != nil {
		return fmt.Errorf("manager: bad interval in %q: %v", line, err)
	}
	st.Interval = iv
	if fields[5] != "-" {
		ts, err := time.Parse(time.RFC3339, fields[5])
		if err != nil {
			return fmt.Errorf("manager: bad lastrun in %q: %v", line, err)
		}
		st.LastRun = ts
	}
	if st.DemandBefore, err = strconv.Atoi(fields[7]); err != nil {
		return fmt.Errorf("manager: bad demand in %q: %v", line, err)
	}
	if st.Runs, err = strconv.Atoi(fields[9]); err != nil {
		return fmt.Errorf("manager: bad runs in %q: %v", line, err)
	}
	if st.LastFound, err = strconv.Atoi(fields[11]); err != nil {
		return fmt.Errorf("manager: bad found in %q: %v", line, err)
	}
	return nil
}
