package manager

import (
	"strings"
	"testing"
	"time"

	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/obs"
)

func TestNextDueSkipsPrivilegedModules(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: false})
	// Mark every module as just run, so NextDue has to compute a real
	// next time instead of short-circuiting on a never-run module.
	for _, mod := range explorer.All() {
		m.State(mod.Info().Name).LastRun = t0
	}

	// The expected next time considers only unprivileged modules.
	var want time.Time
	for _, mod := range explorer.All() {
		info := mod.Info()
		if info.NeedsPrivilege {
			continue
		}
		next := t0.Add(m.State(info.Name).Interval)
		if want.IsZero() || next.Before(want) {
			want = next
		}
	}

	next, ok := m.NextDue()
	if !ok {
		t.Fatal("NextDue found nothing")
	}
	if !next.Equal(want) {
		t.Fatalf("NextDue = %v, want %v (privileged modules must not be considered)", next, want)
	}

	// Sanity: the privileged manager's answer differs, because the
	// NIT-based watchers have the shortest intervals.
	mp := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	for _, mod := range explorer.All() {
		mp.State(mod.Info().Name).LastRun = t0
	}
	nextPriv, ok := mp.NextDue()
	if !ok {
		t.Fatal("privileged NextDue found nothing")
	}
	if !nextPriv.Before(next) {
		t.Fatalf("privileged NextDue %v not before unprivileged %v", nextPriv, next)
	}
}

func TestNextDueUnprivilegedNeverRun(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: false})
	// Only unprivileged modules marked as run: the privileged never-run
	// modules must not make NextDue report "due now".
	for _, mod := range explorer.All() {
		if !mod.Info().NeedsPrivilege {
			m.State(mod.Info().Name).LastRun = t0
		}
	}
	next, ok := m.NextDue()
	if !ok {
		t.Fatal("NextDue found nothing")
	}
	if next.IsZero() {
		t.Fatal("NextDue reported due-now off a privileged module the manager cannot run")
	}
}

func TestAdjustClampsAtBounds(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true, Obs: reg})
	st := m.State("SeqPing")
	info := explorer.SeqPing{}.Info()

	shortened := reg.Counter("manager_interval_shortened_total")
	lengthened := reg.Counter("manager_interval_lengthened_total")

	// Pinned at the minimum, a fruitful run must not shrink further nor
	// count as a shortening.
	st.Interval = info.MinInterval
	m.adjust(st, info, true)
	if st.Interval != info.MinInterval {
		t.Fatalf("fruitful at min: interval %v, want %v", st.Interval, info.MinInterval)
	}
	if n := shortened.Value(); n != 0 {
		t.Fatalf("shortened counter = %d at the min bound, want 0", n)
	}

	// Pinned at the maximum, a fruitless run must not grow further nor
	// count as a lengthening.
	st.Interval = info.MaxInterval
	m.adjust(st, info, false)
	if st.Interval != info.MaxInterval {
		t.Fatalf("fruitless at max: interval %v, want %v", st.Interval, info.MaxInterval)
	}
	if n := lengthened.Value(); n != 0 {
		t.Fatalf("lengthened counter = %d at the max bound, want 0", n)
	}

	// A doubling that overshoots the max clamps to it and still counts.
	st.Interval = info.MaxInterval - time.Minute
	m.adjust(st, info, false)
	if st.Interval != info.MaxInterval {
		t.Fatalf("overshooting adjust: interval %v, want clamp to %v", st.Interval, info.MaxInterval)
	}
	if n := lengthened.Value(); n != 1 {
		t.Fatalf("lengthened counter = %d after clamped growth, want 1", n)
	}

	// A halving that undershoots the min clamps to it and still counts.
	st.Interval = info.MinInterval + time.Minute
	m.adjust(st, info, true)
	if st.Interval != info.MinInterval {
		t.Fatalf("undershooting adjust: interval %v, want clamp to %v", st.Interval, info.MinInterval)
	}
	if n := shortened.Value(); n != 1 {
		t.Fatalf("shortened counter = %d after clamped shrink, want 1", n)
	}
}

func TestHistoryWritesKeyValueFormat(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	m.State("SeqPing").Runs = 5
	var buf strings.Builder
	if err := m.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "module name=SeqPing") {
		t.Fatalf("history not in key=value form:\n%s", out)
	}
	if !strings.Contains(out, "runs=5") {
		t.Fatalf("history missing runs=5:\n%s", out)
	}
}

func TestHistoryKeyValueFieldsParsedByName(t *testing.T) {
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	// Fields out of order, an unknown key, and a missing optional field:
	// all must load, because fields are matched by name.
	line := "module runs=4 name=SeqPing future_key=whatever interval=3h found=11\n"
	if err := m.ReadHistory(strings.NewReader(line)); err != nil {
		t.Fatal(err)
	}
	st := m.State("SeqPing")
	if st.Runs != 4 || st.Interval != 3*time.Hour || st.LastFound != 11 {
		t.Fatalf("restored state = %+v", st)
	}
	if !st.LastRun.IsZero() {
		t.Fatalf("lastrun should stay zero when absent, got %v", st.LastRun)
	}

	// Malformed pairs are rejected, not silently skipped.
	for _, bad := range []string{
		"module name=SeqPing interval\n",    // bare key
		"module interval=1h runs=1\n",       // no name
		"module name=SeqPing interval=xx\n", // unparseable value
		"module name=SeqPing runs=abc\n",
	} {
		if err := m.ReadHistory(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed line accepted: %q", bad)
		}
	}
}

func TestHistoryLoadsLegacyPositionalFormat(t *testing.T) {
	// A pre-existing positional history file must keep loading.
	legacy := "# fremont discovery manager startup/history file\n" +
		"module SeqPing interval 36h0m0s lastrun 1993-01-25T08:00:00Z demand 7 runs 3 found 42\n"
	m := New(journal.Local{J: journal.New()}, Config{Privileged: true})
	if err := m.ReadHistory(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	st := m.State("SeqPing")
	if !st.LastRun.Equal(t0) || st.Runs != 3 || st.LastFound != 42 ||
		st.DemandBefore != 7 || st.Interval != 36*time.Hour {
		t.Fatalf("legacy restore = %+v", st)
	}
}
