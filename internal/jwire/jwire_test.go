package jwire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var t1 = time.Date(1993, 1, 25, 8, 30, 0, 0, time.UTC)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello journal")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := make([]byte, MaxMessage+1)
	if err := WriteFrame(&bytes.Buffer{}, big); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestIfaceObsRoundtrip(t *testing.T) {
	obs := journal.IfaceObs{
		IP: pkt.IPv4(128, 138, 238, 5), HasMAC: true, MAC: pkt.MAC{1, 2, 3, 4, 5, 6},
		Name: "anchor.cs.colorado.edu", HasMask: true, Mask: pkt.MaskBits(24),
		RIPSource: true, Source: journal.SrcARP | journal.SrcRIP, At: t1,
	}
	var w Writer
	PutIfaceObs(&w, obs)
	r := &Reader{B: w.B}
	got := GetIfaceObs(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !got.At.Equal(obs.At) {
		t.Fatalf("time: %v vs %v", got.At, obs.At)
	}
	got.At = obs.At
	if got != obs {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, obs)
	}
}

func TestInterfaceRecRoundtrip(t *testing.T) {
	rec := &journal.InterfaceRec{
		ID: 7, IP: pkt.IPv4(10, 0, 0, 1), MAC: pkt.MAC{8, 0, 0x20, 0, 0, 9},
		Name: "x.example", Mask: pkt.MaskBits(26),
		Aliases: []string{"y.example", "z.example"},
		Gateway: 3, RIPSource: true, Sources: journal.SrcARP | journal.SrcDNS,
		Stamp:     journal.Stamp{Discovered: t1, Changed: t1.Add(time.Hour), Verified: t1.Add(2 * time.Hour)},
		MACStamp:  journal.Stamp{Discovered: t1},
		NameStamp: journal.Stamp{Discovered: t1.Add(time.Minute)},
	}
	var w Writer
	PutInterfaceRec(&w, rec)
	r := &Reader{B: w.B}
	got := GetInterfaceRec(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, rec)
	}
}

func TestGatewayRecRoundtrip(t *testing.T) {
	sn, _ := pkt.ParseSubnet("10.1.0.0/16")
	rec := &journal.GatewayRec{
		ID: 2, Ifaces: []journal.ID{4, 5}, Subnets: []pkt.Subnet{sn},
		Sources: journal.SrcTraceroute, Stamp: journal.Stamp{Discovered: t1, Changed: t1, Verified: t1},
	}
	var w Writer
	PutGatewayRec(&w, rec)
	r := &Reader{B: w.B}
	got := GetGatewayRec(r)
	if r.Err != nil || !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch (%v):\n%+v\n%+v", r.Err, got, rec)
	}
}

func TestSubnetRecRoundtrip(t *testing.T) {
	sn, _ := pkt.ParseSubnet("10.2.3.0/24")
	rec := &journal.SubnetRec{
		ID: 9, Subnet: sn, Gateways: []journal.ID{1},
		HostCount: 54, LoAddr: pkt.IPv4(10, 2, 3, 1), HiAddr: pkt.IPv4(10, 2, 3, 200),
		RIPMetric: 2, Sources: journal.SrcRIP | journal.SrcDNS,
		Stamp: journal.Stamp{Discovered: t1, Changed: t1, Verified: t1},
	}
	var w Writer
	PutSubnetRec(&w, rec)
	r := &Reader{B: w.B}
	got := GetSubnetRec(r)
	if r.Err != nil || !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch (%v):\n%+v\n%+v", r.Err, got, rec)
	}
}

func TestQueryRoundtrip(t *testing.T) {
	q := journal.Query{
		Kind: journal.KindInterface, HasIP: true, ByIP: pkt.IPv4(1, 2, 3, 4),
		HasMAC: true, ByMAC: pkt.MAC{9, 8, 7, 6, 5, 4}, ByName: "host.example",
		HasRange: true, IPLo: pkt.IPv4(1, 0, 0, 0), IPHi: pkt.IPv4(2, 0, 0, 0),
		HasID: true, ByID: 42,
		ModifiedSince: t1,
	}
	var w Writer
	PutQuery(&w, q)
	r := &Reader{B: w.B}
	got := GetQuery(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !got.ModifiedSince.Equal(q.ModifiedSince) {
		t.Fatal("ModifiedSince mismatch")
	}
	got.ModifiedSince = q.ModifiedSince
	if got != q {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, q)
	}
}

func TestScanReqRoundtrip(t *testing.T) {
	req := ScanReq{
		Kind:   journal.KindInterface,
		Cursor: 77,
		Limit:  128,
		Filter: journal.Query{HasIP: true, ByIP: pkt.IPv4(5, 6, 7, 8)},
	}
	var w Writer
	PutScanReq(&w, req)
	r := &Reader{B: w.B}
	got := GetScanReq(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got != req {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, req)
	}
}

func TestChangesReqRoundtrip(t *testing.T) {
	req := ChangesReq{Kind: journal.KindSubnet, After: 1 << 40, Limit: 9}
	var w Writer
	PutChangesReq(&w, req)
	r := &Reader{B: w.B}
	got := GetChangesReq(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got != req {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, req)
	}
}

func TestScanReqVersionGate(t *testing.T) {
	// A request from a future protocol version must be rejected, not
	// misparsed: the version byte leads both request bodies.
	var w Writer
	PutScanReq(&w, ScanReq{Kind: journal.KindInterface})
	w.B[0] = ScanVersion + 1
	r := &Reader{B: w.B}
	GetScanReq(r)
	if r.Err != ErrScanVersion {
		t.Fatalf("scan version gate: err = %v, want ErrScanVersion", r.Err)
	}
	var w2 Writer
	PutChangesReq(&w2, ChangesReq{Kind: journal.KindGateway})
	w2.B[0] = ScanVersion + 1
	r2 := &Reader{B: w2.B}
	GetChangesReq(r2)
	if r2.Err != ErrScanVersion {
		t.Fatalf("changes version gate: err = %v, want ErrScanVersion", r2.Err)
	}
}

func TestReaderResilientToGarbage(t *testing.T) {
	f := func(b []byte) bool {
		r := &Reader{B: b}
		GetIfaceObs(r)
		r2 := &Reader{B: b}
		GetInterfaceRec(r2)
		r3 := &Reader{B: b}
		GetGatewayRec(r3)
		r4 := &Reader{B: b}
		GetSubnetRec(r4)
		return true // must not panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRoundtrip(t *testing.T) {
	subs := [][]byte{
		{OpPing},
		append([]byte{OpStoreInterface}, make([]byte, 40)...),
		{}, // empty sub-requests survive framing (the server rejects them)
	}
	var w Writer
	if err := PutBatch(&w, subs); err != nil {
		t.Fatal(err)
	}
	r := &Reader{B: w.B}
	got := GetBatch(r)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !reflect.DeepEqual(got, subs) {
		t.Fatalf("roundtrip mismatch:\n%v\n%v", got, subs)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestBatchSizeLimit(t *testing.T) {
	subs := make([][]byte, MaxBatch+1)
	for i := range subs {
		subs[i] = []byte{OpPing}
	}
	if err := PutBatch(&Writer{}, subs); err != ErrBatchTooLarge {
		t.Fatalf("PutBatch err = %v, want ErrBatchTooLarge", err)
	}
	// A forged count over the limit must be rejected before allocation.
	var w Writer
	w.U32(MaxBatch + 1)
	r := &Reader{B: w.B}
	if GetBatch(r) != nil || r.Err != ErrBatchTooLarge {
		t.Fatalf("GetBatch err = %v, want ErrBatchTooLarge", r.Err)
	}
}

// TestBatchTruncated decodes every strict prefix of a valid batch payload:
// none may panic, and all must report an error (a prefix always cuts either
// the count, a length, or a sub-request body).
func TestBatchTruncated(t *testing.T) {
	subs := [][]byte{{OpPing}, append([]byte{OpStoreSubnet}, make([]byte, 25)...), {OpDelete, 1, 0, 0, 0, 7}}
	var w Writer
	if err := PutBatch(&w, subs); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(w.B); n++ {
		r := &Reader{B: w.B[:n]}
		GetBatch(r)
		if r.Err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(w.B))
		}
	}
}

// TestBatchGarbage throws arbitrary bytes at the batch decoder: it must
// never panic, and anything it accepts must re-encode within bounds.
func TestBatchGarbage(t *testing.T) {
	f := func(b []byte) bool {
		r := &Reader{B: b}
		subs := GetBatch(r)
		if r.Err != nil {
			return subs == nil
		}
		return len(subs) <= MaxBatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzGetBatch is the native-fuzzing version of TestBatchGarbage; `go test`
// runs the seed corpus, `go test -fuzz=FuzzGetBatch` explores further.
func FuzzGetBatch(f *testing.F) {
	var w Writer
	_ = PutBatch(&w, [][]byte{{OpPing}, {OpStoreInterface, 0, 1, 2}})
	f.Add(w.B)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Reader{B: data}
		subs := GetBatch(r)
		if r.Err == nil && len(subs) > MaxBatch {
			t.Fatalf("accepted %d sub-requests, limit %d", len(subs), MaxBatch)
		}
		if r.Err == nil {
			// Whatever decoded must survive a re-encode/re-decode cycle.
			var w2 Writer
			if err := PutBatch(&w2, subs); err != nil {
				t.Fatal(err)
			}
			r2 := &Reader{B: w2.B}
			got := GetBatch(r2)
			if r2.Err != nil || len(got) != len(subs) {
				t.Fatalf("re-decode failed: %v", r2.Err)
			}
		}
	})
}

// FuzzGetScanReq throws hostile bytes at the OpScan request decoder: it
// must never panic, and anything it accepts must survive a re-encode /
// re-decode cycle.
func FuzzGetScanReq(f *testing.F) {
	var w Writer
	PutScanReq(&w, ScanReq{Kind: journal.KindInterface, Cursor: 3, Limit: 64,
		Filter: journal.Query{HasIP: true, ByIP: pkt.IPv4(1, 2, 3, 4)}})
	f.Add(w.B)
	f.Add([]byte{})
	f.Add([]byte{ScanVersion})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Reader{B: data}
		req := GetScanReq(r)
		if r.Err != nil {
			return
		}
		var w2 Writer
		PutScanReq(&w2, req)
		r2 := &Reader{B: w2.B}
		got := GetScanReq(r2)
		if r2.Err != nil {
			t.Fatalf("re-decode failed: %v", r2.Err)
		}
		if got.Kind != req.Kind || got.Cursor != req.Cursor || got.Limit != req.Limit {
			t.Fatalf("re-decode mismatch:\n%+v\n%+v", got, req)
		}
	})
}

// FuzzGetChangesReq: see FuzzGetScanReq.
func FuzzGetChangesReq(f *testing.F) {
	var w Writer
	PutChangesReq(&w, ChangesReq{Kind: journal.KindGateway, After: 99, Limit: 16})
	f.Add(w.B)
	f.Add([]byte{})
	f.Add([]byte{ScanVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Reader{B: data}
		req := GetChangesReq(r)
		if r.Err != nil {
			return
		}
		var w2 Writer
		PutChangesReq(&w2, req)
		r2 := &Reader{B: w2.B}
		if got := GetChangesReq(r2); r2.Err != nil || got != req {
			t.Fatalf("re-decode mismatch (%v):\n%+v\n%+v", r2.Err, got, req)
		}
	})
}

func TestQuickPrimitiveRoundtrip(t *testing.T) {
	f := func(a uint32, b uint64, s string, c bool, m [6]byte) bool {
		var w Writer
		w.U32(a)
		w.U64(b)
		w.String(s)
		w.Bool(c)
		w.MAC(pkt.MAC(m))
		r := &Reader{B: w.B}
		return r.U32() == a && r.U64() == b && r.String() == s && r.Bool() == c &&
			r.MAC() == pkt.MAC(m) && r.Err == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
