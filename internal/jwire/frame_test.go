// Framing-path tests: the pooled coalesced write, the vectored large
// write, and buffer-recycling reads must all be byte-identical to the
// naive two-write implementation they replaced — and allocation-free in
// steady state, which CI gates via BenchmarkFrameRoundtrip.
package jwire

import (
	"bytes"
	"testing"
)

// TestFrameLargePayload exercises the vectored (non-coalesced) write
// path and the allocate-when-larger read path.
func TestFrameLargePayload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, frameCoalesceMax+1234)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(payload)+4 {
		t.Fatalf("frame is %d bytes, want %d", buf.Len(), len(payload)+4)
	}
	small := make([]byte, 0, 16) // too small: ReadFrameBuf must allocate
	got, err := ReadFrameBuf(&buf, small)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted through vectored write")
	}
}

// TestReadFrameBufReuse: a buffer with enough capacity is reused, one
// without is replaced, and either way the payload is intact.
func TestReadFrameBufReuse(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	got, err := ReadFrameBuf(bytes.NewReader(wire.Bytes()), buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("payload = %q", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("capacious buffer was not reused")
	}
}

// TestBufPoolRoundtrip: pooled buffers come back empty and are safe to
// hand to ReadFrameBuf.
func TestBufPoolRoundtrip(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d bytes", len(b))
	}
	b = append(b, []byte("scribble")...)
	PutBuf(b)
	if b2 := GetBuf(); len(b2) != 0 {
		t.Fatalf("recycled buffer not reset: %q", b2)
	}
}

// BenchmarkFrameRoundtrip is the CI allocation gate on the framing hot
// path: one coalesced write plus one buffer-reusing read of a typical
// store-sized frame must not allocate in steady state.
func BenchmarkFrameRoundtrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0x42}, 64)
	var wire bytes.Buffer
	var rd bytes.Reader
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Reset()
		if err := WriteFrame(&wire, payload); err != nil {
			b.Fatal(err)
		}
		rd.Reset(wire.Bytes())
		got, err := ReadFrameBuf(&rd, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = got[:0]
	}
}
