package jwire

import (
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var applyT0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func storeReq(n int) []byte {
	var w Writer
	w.U8(OpStoreInterface)
	PutIfaceObs(&w, journal.IfaceObs{
		IP: pkt.IPv4(10, 0, 0, byte(n)), Source: journal.SrcICMP, At: applyT0,
	})
	return w.B
}

func queryReq() []byte {
	var w Writer
	w.U8(OpGetInterfaces)
	PutQuery(&w, journal.Query{})
	return w.B
}

func TestMutates(t *testing.T) {
	for _, op := range []byte{OpStoreInterface, OpStoreGateway, OpStoreSubnet, OpDelete} {
		if !Mutates(op) {
			t.Errorf("Mutates(%d) = false", op)
		}
	}
	for _, op := range []byte{OpGetInterfaces, OpGetGateways, OpGetSubnets, OpPing, OpBatch, 0, 200} {
		if Mutates(op) {
			t.Errorf("Mutates(%d) = true", op)
		}
	}
}

func TestPayloadMutates(t *testing.T) {
	if PayloadMutates(nil) || PayloadMutates([]byte{}) {
		t.Fatal("empty payload mutates")
	}
	if !PayloadMutates(storeReq(1)) {
		t.Fatal("store payload reported non-mutating")
	}
	if PayloadMutates(queryReq()) {
		t.Fatal("query payload reported mutating")
	}

	batch := func(subs ...[]byte) []byte {
		var w Writer
		w.U8(OpBatch)
		if err := PutBatch(&w, subs); err != nil {
			t.Fatal(err)
		}
		return w.B
	}
	if PayloadMutates(batch(queryReq(), []byte{OpPing})) {
		t.Fatal("query-only batch reported mutating")
	}
	if !PayloadMutates(batch(queryReq(), storeReq(1))) {
		t.Fatal("batch with a store reported non-mutating")
	}
	if PayloadMutates([]byte{OpBatch, 0xff, 0xff}) {
		t.Fatal("malformed batch reported mutating")
	}
}

func TestApplyOpAndReplayPayload(t *testing.T) {
	j := journal.New()
	if n := ReplayPayload(j, storeReq(1)); n != 1 || j.NumInterfaces() != 1 {
		t.Fatalf("single replay applied %d ops, %d interfaces", n, j.NumInterfaces())
	}
	// Queries and garbage apply nothing.
	if n := ReplayPayload(j, queryReq()); n != 0 {
		t.Fatalf("query replay applied %d ops", n)
	}
	if n := ReplayPayload(j, []byte{}); n != 0 {
		t.Fatalf("empty replay applied %d ops", n)
	}
	if n := ReplayPayload(j, []byte{OpStoreInterface, 1, 2}); n != 0 {
		t.Fatalf("truncated store applied %d ops", n)
	}

	// A batch replays its valid mutating sub-requests and skips the
	// rest — the live server's partial-failure semantics.
	var w Writer
	w.U8(OpBatch)
	if err := PutBatch(&w, [][]byte{
		storeReq(2),
		queryReq(),
		{OpStoreInterface, 9}, // malformed: originally answered with an error slot
		storeReq(3),
	}); err != nil {
		t.Fatal(err)
	}
	if n := ReplayPayload(j, w.B); n != 2 {
		t.Fatalf("batch replay applied %d ops, want 2", n)
	}
	if j.NumInterfaces() != 3 {
		t.Fatalf("journal has %d interfaces, want 3", j.NumInterfaces())
	}

	// Delete replays too.
	recs := j.Interfaces(journal.Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, 2)})
	if len(recs) != 1 {
		t.Fatal("setup lookup failed")
	}
	var dw Writer
	dw.U8(OpDelete)
	dw.U8(byte(journal.KindInterface))
	dw.ID(recs[0].ID)
	if n := ReplayPayload(j, dw.B); n != 1 || j.NumInterfaces() != 2 {
		t.Fatalf("delete replay applied %d, %d interfaces", n, j.NumInterfaces())
	}
}
