package jwire

import (
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

func TestSubscribeReqRoundtrip(t *testing.T) {
	cases := []SubscribeReq{
		{},
		{Kinds: SubKindInterface, After: 42},
		{Kinds: SubAllKinds, FromNow: true},
		{Kinds: SubKindGateway | SubKindSubnet, After: 1<<63 - 1},
	}
	for _, req := range cases {
		var w Writer
		PutSubscribeReq(&w, req)
		r := &Reader{B: w.B}
		got := GetSubscribeReq(r)
		if r.Err != nil || got != req {
			t.Fatalf("roundtrip %+v: got %+v, err %v", req, got, r.Err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d undecoded bytes", r.Remaining())
		}
	}
}

func TestSubscribeReqVersionGate(t *testing.T) {
	var w Writer
	PutSubscribeReq(&w, SubscribeReq{Kinds: SubAllKinds})
	w.B[0] = ScanVersion + 1
	r := &Reader{B: w.B}
	GetSubscribeReq(r)
	if r.Err != ErrScanVersion {
		t.Fatalf("err = %v, want ErrScanVersion", r.Err)
	}
}

func TestSubKindBit(t *testing.T) {
	if SubKindBit(journal.KindInterface) != SubKindInterface ||
		SubKindBit(journal.KindGateway) != SubKindGateway ||
		SubKindBit(journal.KindSubnet) != SubKindSubnet {
		t.Fatal("kind bit mapping broken")
	}
	if SubKindBit(journal.RecordKind(99)) != 0 {
		t.Fatal("unknown kind must map to no bits")
	}
}

func TestSubEventRoundtrip(t *testing.T) {
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	iface := &journal.InterfaceRec{
		ID: 7, IP: pkt.IPv4(10, 0, 1, 5), MAC: pkt.MAC{8, 0, 0x20, 1, 2, 3},
		Name: "anchor", Mask: pkt.MaskBits(24),
		Stamp: journal.Stamp{Discovered: at, Changed: at, Verified: at},
	}
	var w Writer
	PutSubIfaceEvent(&w, 99, iface)
	r := &Reader{B: w.B}
	ev := GetSubEvent(r)
	if r.Err != nil || ev.Type != SubEventRecord || ev.Kind != journal.KindInterface ||
		ev.Seq != 99 || ev.Iface == nil {
		t.Fatalf("iface event: %+v, err %v", ev, r.Err)
	}
	if ev.Iface.IP != iface.IP || ev.Iface.MAC != iface.MAC || ev.Iface.Name != iface.Name {
		t.Fatalf("record lost in transit: %+v", ev.Iface)
	}

	gw := &journal.GatewayRec{ID: 3, Ifaces: []journal.ID{1, 2},
		Subnets: []pkt.Subnet{{Addr: pkt.IPv4(10, 0, 1, 0), Mask: pkt.MaskBits(24)}}}
	w.B = w.B[:0]
	PutSubGatewayEvent(&w, 100, gw)
	r = &Reader{B: w.B}
	ev = GetSubEvent(r)
	if r.Err != nil || ev.Kind != journal.KindGateway || ev.Seq != 100 ||
		ev.Gateway == nil || len(ev.Gateway.Ifaces) != 2 {
		t.Fatalf("gateway event: %+v, err %v", ev, r.Err)
	}

	sn := &journal.SubnetRec{ID: 5, Subnet: pkt.Subnet{Addr: pkt.IPv4(10, 0, 2, 0), Mask: pkt.MaskBits(24)}}
	w.B = w.B[:0]
	PutSubSubnetEvent(&w, 101, sn)
	r = &Reader{B: w.B}
	ev = GetSubEvent(r)
	if r.Err != nil || ev.Kind != journal.KindSubnet || ev.Seq != 101 || ev.Subnet == nil {
		t.Fatalf("subnet event: %+v, err %v", ev, r.Err)
	}

	w.B = w.B[:0]
	PutSubResync(&w, 55)
	r = &Reader{B: w.B}
	ev = GetSubEvent(r)
	if r.Err != nil || ev.Type != SubEventResync || ev.Cursor != 55 {
		t.Fatalf("resync event: %+v, err %v", ev, r.Err)
	}
}

func TestSubEventGarbage(t *testing.T) {
	for _, data := range [][]byte{
		{},
		{SubEventRecord},
		{SubEventRecord, 99, 0, 0, 0, 0, 0, 0, 0, 1},
		{SubEventResync},
		{0xfe, 1, 2, 3},
	} {
		r := &Reader{B: data}
		GetSubEvent(r)
		if r.Err == nil {
			t.Fatalf("accepted garbage %v", data)
		}
	}
}

// FuzzGetSubscribeReq throws hostile bytes at the OpSubscribe request
// decoder: it must never panic, and anything it accepts must survive a
// re-encode / re-decode cycle.
func FuzzGetSubscribeReq(f *testing.F) {
	var w Writer
	PutSubscribeReq(&w, SubscribeReq{Kinds: SubAllKinds, After: 42})
	f.Add(w.B)
	w.B = w.B[:0]
	PutSubscribeReq(&w, SubscribeReq{FromNow: true})
	f.Add(w.B)
	f.Add([]byte{})
	f.Add([]byte{ScanVersion})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Reader{B: data}
		req := GetSubscribeReq(r)
		if r.Err != nil {
			return
		}
		var w2 Writer
		PutSubscribeReq(&w2, req)
		r2 := &Reader{B: w2.B}
		if got := GetSubscribeReq(r2); r2.Err != nil || got != req {
			t.Fatalf("re-decode mismatch (%v):\n%+v\n%+v", r2.Err, got, req)
		}
	})
}
