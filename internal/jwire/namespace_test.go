package jwire

import (
	"bytes"
	"strings"
	"testing"
)

func TestNamespaceReqRoundtrip(t *testing.T) {
	for _, ns := range []string{"", "campus-west", "tenant_01.prod"} {
		var w Writer
		PutNamespaceReq(&w, NamespaceReq{Namespace: ns})
		r := &Reader{B: w.B}
		req := GetNamespaceReq(r)
		if r.Err != nil {
			t.Fatalf("ns %q: %v", ns, r.Err)
		}
		if req.Namespace != ns {
			t.Fatalf("roundtrip: got %q, want %q", req.Namespace, ns)
		}
	}
}

func TestNamespaceVersionGate(t *testing.T) {
	var w Writer
	PutNamespaceReq(&w, NamespaceReq{Namespace: "x"})
	w.B[0] = NamespaceVersion + 1 // future version
	r := &Reader{B: w.B}
	GetNamespaceReq(r)
	if r.Err == nil {
		t.Fatal("future namespace version accepted")
	}
}

func TestValidNamespace(t *testing.T) {
	good := []string{"", "a", "campus-west", "t_1.x", strings.Repeat("n", MaxNamespaceLen)}
	for _, ns := range good {
		if !ValidNamespace(ns) {
			t.Errorf("ValidNamespace(%q) = false, want true", ns)
		}
	}
	bad := []string{"has space", "eq=uals", `qu"ote`, "non\x7fprintable", "\x01", strings.Repeat("n", MaxNamespaceLen+1)}
	for _, ns := range bad {
		if ValidNamespace(ns) {
			t.Errorf("ValidNamespace(%q) = true, want false", ns)
		}
	}
}

// TestScopePayload checks the WAL envelope: scoping wraps a frame with
// the namespace, unscoping recovers both exactly, and a frame that was
// never scoped (every pre-tenancy WAL frame) passes through untouched.
func TestScopePayload(t *testing.T) {
	inner := []byte{OpStoreInterface, 1, 2, 3, 4}
	env := ScopePayload("tenant-a", inner)
	ns, got, err := UnscopePayload(env)
	if err != nil {
		t.Fatal(err)
	}
	if ns != "tenant-a" || !bytes.Equal(got, inner) {
		t.Fatalf("unscope: ns=%q inner=%v", ns, got)
	}

	// Legacy (unscoped) frames: identity pass-through.
	ns, got, err = UnscopePayload(inner)
	if err != nil {
		t.Fatal(err)
	}
	if ns != "" || !bytes.Equal(got, inner) {
		t.Fatalf("legacy frame altered: ns=%q inner=%v", ns, got)
	}

	// A corrupt envelope (truncated) errors rather than replaying garbage.
	if _, _, err := UnscopePayload(env[:3]); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}
