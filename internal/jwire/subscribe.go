// Push-based change streaming: the wire format of OpSubscribe.
//
// A subscription turns a connection inside out. The client sends one
// OpSubscribe request naming a record-kind mask and a modification
// sequence cursor; the server answers with a normal OK frame carrying
// the starting cursor, and from then on the connection is one-way — the
// server pushes one event frame per change record as commits land, and
// the client sends nothing further (anything it does send ends the
// subscription). Records are published at the WAL-append point, so a
// push is never ahead of durability, and every pushed record carries
// the ModSeq the journal stamped on it, so the client always holds a
// cursor it can resume from after a disconnect with no gaps and no
// duplicates.
package jwire

import (
	"fmt"

	"fremont/internal/journal"
)

// Subscription kind-mask bits. A SubscribeReq with Kinds == 0 receives
// every kind.
const (
	SubKindInterface byte = 1 << 0
	SubKindGateway   byte = 1 << 1
	SubKindSubnet    byte = 1 << 2
	SubAllKinds           = SubKindInterface | SubKindGateway | SubKindSubnet
)

// SubKindBit returns the subscription mask bit for a record kind (0 for
// an unknown kind).
func SubKindBit(k journal.RecordKind) byte {
	switch k {
	case journal.KindInterface:
		return SubKindInterface
	case journal.KindGateway:
		return SubKindGateway
	case journal.KindSubnet:
		return SubKindSubnet
	}
	return 0
}

// SubscribeReq is the body of an OpSubscribe request.
type SubscribeReq struct {
	// Kinds is the record-kind mask (SubKind* bits); 0 subscribes to all
	// kinds.
	Kinds byte
	// FromNow starts the stream at the server's current modification
	// sequence, ignoring After: only changes committed after the
	// subscription is accepted are delivered.
	FromNow bool
	// After is the resume cursor: records with ModSeq > After are
	// delivered (catch-up first, then live pushes). 0 replays the whole
	// journal before going live.
	After uint64
}

// PutSubscribeReq encodes the body of an OpSubscribe request (the caller
// writes the opcode first, as for every other operation).
func PutSubscribeReq(w *Writer, req SubscribeReq) {
	w.U8(ScanVersion)
	w.U8(req.Kinds)
	w.Bool(req.FromNow)
	w.U64(req.After)
}

// GetSubscribeReq decodes the body of an OpSubscribe request; an
// unsupported version sets r.Err to ErrScanVersion.
func GetSubscribeReq(r *Reader) SubscribeReq {
	if v := r.U8(); r.Err == nil && v != ScanVersion {
		r.Err = ErrScanVersion
	}
	return SubscribeReq{
		Kinds:   r.U8(),
		FromNow: r.Bool(),
		After:   r.U64(),
	}
}

// Subscription event types: the first byte of every pushed frame.
const (
	// SubEventRecord carries one change record: kind, ModSeq, record.
	SubEventRecord byte = 0
	// SubEventResync marks a slow-consumer degradation: the server
	// dropped this subscriber's queued live pushes and is re-reading
	// changes from the cursor in the frame. Deliveries after the marker
	// are catch-up pages; the no-gap/no-duplicate contract still holds.
	SubEventResync byte = 1
)

// SubEvent is one decoded push frame. Type selects which fields are
// meaningful: a record event sets Kind, Seq, and exactly one of Iface /
// Gateway / Subnet; a resync marker sets only Cursor.
type SubEvent struct {
	Type    byte
	Kind    journal.RecordKind
	Seq     uint64 // the record's ModSeq: the cursor after this event
	Iface   *journal.InterfaceRec
	Gateway *journal.GatewayRec
	Subnet  *journal.SubnetRec
	Cursor  uint64 // SubEventResync: cursor the server resumed from
}

// PutSubIfaceEvent encodes an interface change push frame.
func PutSubIfaceEvent(w *Writer, seq uint64, rec *journal.InterfaceRec) {
	w.U8(SubEventRecord)
	w.U8(byte(journal.KindInterface))
	w.U64(seq)
	PutInterfaceRec(w, rec)
}

// PutSubGatewayEvent encodes a gateway change push frame.
func PutSubGatewayEvent(w *Writer, seq uint64, rec *journal.GatewayRec) {
	w.U8(SubEventRecord)
	w.U8(byte(journal.KindGateway))
	w.U64(seq)
	PutGatewayRec(w, rec)
}

// PutSubSubnetEvent encodes a subnet change push frame.
func PutSubSubnetEvent(w *Writer, seq uint64, rec *journal.SubnetRec) {
	w.U8(SubEventRecord)
	w.U8(byte(journal.KindSubnet))
	w.U64(seq)
	PutSubnetRec(w, rec)
}

// PutSubResync encodes a resync marker frame.
func PutSubResync(w *Writer, cursor uint64) {
	w.U8(SubEventResync)
	w.U64(cursor)
}

// GetSubEvent decodes one pushed frame. Malformed input sets r.Err.
func GetSubEvent(r *Reader) SubEvent {
	ev := SubEvent{Type: r.U8()}
	switch ev.Type {
	case SubEventRecord:
		ev.Kind = journal.RecordKind(r.U8())
		ev.Seq = r.U64()
		switch ev.Kind {
		case journal.KindInterface:
			ev.Iface = GetInterfaceRec(r)
		case journal.KindGateway:
			ev.Gateway = GetGatewayRec(r)
		case journal.KindSubnet:
			ev.Subnet = GetSubnetRec(r)
		default:
			if r.Err == nil {
				r.Err = fmt.Errorf("jwire: unknown record kind %d in push frame", ev.Kind)
			}
		}
	case SubEventResync:
		ev.Cursor = r.U64()
	default:
		if r.Err == nil {
			r.Err = fmt.Errorf("jwire: unknown subscription event type %d", ev.Type)
		}
	}
	return ev
}
