// Apply: the replay-dispatch helper. The Journal Server and WAL
// recovery both need to turn a decoded request into journal mutations;
// keeping that dispatch here means the log's replay path exercises
// exactly the code the live server runs, so a recovered journal cannot
// drift from one built by serving the same requests.
package jwire

import (
	"fmt"

	"fremont/internal/journal"
)

// Mutates reports whether op changes the journal. OpBatch is excluded:
// use PayloadMutates to inspect a batch's sub-requests.
func Mutates(op byte) bool {
	switch op {
	case OpStoreInterface, OpStoreGateway, OpStoreSubnet, OpDelete:
		return true
	}
	return false
}

// PayloadMutates reports whether a request frame contains at least one
// mutating operation, looking through OpBatch at its sub-requests. A
// frame this returns false for need not be write-ahead logged.
func PayloadMutates(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	if payload[0] != OpBatch {
		return Mutates(payload[0])
	}
	r := &Reader{B: payload}
	r.U8()
	for _, sub := range GetBatch(r) {
		if len(sub) > 0 && Mutates(sub[0]) {
			return true
		}
	}
	return false
}

// ApplyResult reports what a mutating operation did.
type ApplyResult struct {
	ID      journal.ID // record touched by a Store
	Created bool       // StoreInterface: the record is new
	Deleted bool       // Delete: the record existed and was removed
}

// ApplyOp decodes the body of one mutating operation from r and applies
// it to j. The caller has already consumed the opcode. Decode errors
// (and non-mutating opcodes) are returned without touching the journal.
func ApplyOp(j *journal.Journal, op byte, r *Reader) (ApplyResult, error) {
	switch op {
	case OpStoreInterface:
		obs := GetIfaceObs(r)
		if r.Err != nil {
			return ApplyResult{}, r.Err
		}
		id, created := j.StoreInterface(obs)
		return ApplyResult{ID: id, Created: created}, nil
	case OpStoreGateway:
		obs := GetGatewayObs(r)
		if r.Err != nil {
			return ApplyResult{}, r.Err
		}
		return ApplyResult{ID: j.StoreGateway(obs)}, nil
	case OpStoreSubnet:
		obs := GetSubnetObs(r)
		if r.Err != nil {
			return ApplyResult{}, r.Err
		}
		return ApplyResult{ID: j.StoreSubnet(obs)}, nil
	case OpDelete:
		kind := journal.RecordKind(r.U8())
		id := r.ID()
		if r.Err != nil {
			return ApplyResult{}, r.Err
		}
		return ApplyResult{Deleted: j.Delete(kind, id)}, nil
	}
	return ApplyResult{}, fmt.Errorf("jwire: opcode %d is not a mutation", op)
}

// ReplayPayload re-applies the mutating operations of one logged
// request frame to j and reports how many were applied. It mirrors the
// server's partial-failure semantics: a malformed or non-mutating
// sub-request is skipped (the live server answered it with an error or
// a query response, neither of which touched the journal), and the rest
// of the frame still applies.
func ReplayPayload(j *journal.Journal, payload []byte) int {
	r := &Reader{B: payload}
	op := r.U8()
	if r.Err != nil {
		return 0
	}
	if op != OpBatch {
		if !Mutates(op) {
			return 0
		}
		if _, err := ApplyOp(j, op, r); err != nil {
			return 0
		}
		return 1
	}
	applied := 0
	for _, sub := range GetBatch(r) {
		sr := &Reader{B: sub}
		sop := sr.U8()
		if sr.Err != nil || !Mutates(sop) {
			continue
		}
		if _, err := ApplyOp(j, sop, sr); err == nil {
			applied++
		}
	}
	return applied
}
