package jwire

import "errors"

// Tenant namespaces. A fabric hosts many monitored networks as tenants;
// a connection selects its tenant once with OpNamespace and every later
// request on that connection is scoped to the tenant's journal (the
// empty namespace is the default journal — the one subscriptions,
// replication, and the snapshotted golden traces run against). The
// request body leads with a version byte, like OpScan, so namespace
// semantics can evolve without a new opcode.

// NamespaceVersion is the version byte leading OpNamespace request
// bodies.
const NamespaceVersion byte = 1

// MaxNamespaceLen bounds tenant names; longer names are rejected before
// they reach the journal or the WAL.
const MaxNamespaceLen = 128

// ErrNamespaceVersion is returned when a namespace request carries an
// unsupported version byte.
var ErrNamespaceVersion = errors.New("jwire: unsupported namespace version")

// ErrBadNamespace is returned for tenant names that fail ValidNamespace.
var ErrBadNamespace = errors.New("jwire: invalid namespace")

// NamespaceReq selects the tenant for the rest of the connection. The
// empty string returns the connection to the default journal.
type NamespaceReq struct {
	Namespace string
}

// ValidNamespace reports whether ns may name a tenant: at most
// MaxNamespaceLen bytes of printable ASCII with no spaces, '=' or '"'
// (tenant names appear as metric label values and in WAL envelopes).
// The empty string is valid — it is the default journal.
func ValidNamespace(ns string) bool {
	if len(ns) > MaxNamespaceLen {
		return false
	}
	for i := 0; i < len(ns); i++ {
		c := ns[i]
		if c <= ' ' || c > '~' || c == '=' || c == '"' {
			return false
		}
	}
	return true
}

// PutNamespaceReq encodes the body of an OpNamespace request (the caller
// writes the opcode first).
func PutNamespaceReq(w *Writer, req NamespaceReq) {
	w.U8(NamespaceVersion)
	w.String(req.Namespace)
}

// GetNamespaceReq decodes the body of an OpNamespace request; an
// unsupported version sets r.Err to ErrNamespaceVersion and an invalid
// tenant name sets r.Err to ErrBadNamespace.
func GetNamespaceReq(r *Reader) NamespaceReq {
	if v := r.U8(); r.Err == nil && v != NamespaceVersion {
		r.Err = ErrNamespaceVersion
	}
	req := NamespaceReq{Namespace: r.String()}
	if r.Err == nil && !ValidNamespace(req.Namespace) {
		r.Err = ErrBadNamespace
	}
	return req
}

// ScopePayload wraps a request payload in a tenant envelope for the WAL:
// [OpNamespace][version][namespace][payload]. Recovery unwraps it with
// UnscopePayload and replays the inner payload against the tenant's
// journal. Default-namespace frames are logged raw, so every WAL written
// before tenancy existed replays unchanged.
func ScopePayload(ns string, payload []byte) []byte {
	w := &Writer{B: make([]byte, 0, len(payload)+len(ns)+8)}
	w.U8(OpNamespace)
	w.U8(NamespaceVersion)
	w.String(ns)
	w.B = append(w.B, payload...)
	return w.B
}

// UnscopePayload splits a WAL frame into its tenant namespace and inner
// payload. Frames that are not envelopes come back with ns == "" and the
// payload untouched.
func UnscopePayload(payload []byte) (ns string, inner []byte, err error) {
	if len(payload) == 0 || payload[0] != OpNamespace {
		return "", payload, nil
	}
	r := &Reader{B: payload}
	r.U8() // opcode
	if v := r.U8(); r.Err == nil && v != NamespaceVersion {
		r.Err = ErrNamespaceVersion
	}
	ns = r.String()
	if r.Err == nil && !ValidNamespace(ns) {
		r.Err = ErrBadNamespace
	}
	if r.Err != nil {
		return "", nil, r.Err
	}
	return ns, r.B[len(r.B)-r.Remaining():], nil
}
