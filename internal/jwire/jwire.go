// Package jwire defines the Journal Server's binary wire protocol: a
// length-prefixed request/response exchange over TCP, carrying the three
// Store/Update observations, Get queries with selection criteria, and
// Delete requests — the "common library of access and data transfer
// routines that the Explorer Modules, Discovery Manager, and data analysis
// and presentation programs use".
//
// Framing: every message is a big-endian uint32 payload length followed by
// the payload. Payloads begin with a one-byte opcode. Integers are
// big-endian; strings and slices are length-prefixed; timestamps travel as
// Unix nanoseconds.
package jwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Opcodes.
const (
	OpStoreInterface byte = 1
	OpStoreGateway   byte = 2
	OpStoreSubnet    byte = 3
	OpGetInterfaces  byte = 4
	OpGetGateways    byte = 5
	OpGetSubnets     byte = 6
	OpDelete         byte = 7
	OpPing           byte = 8
	// OpBatch carries N sub-requests in one frame; the response carries one
	// length-prefixed sub-response (with its own status byte) per
	// sub-request, so a whole burst of stores costs a single round trip.
	OpBatch byte = 9
	// OpStats asks the server for its metrics snapshot. The response body
	// is one length-prefixed JSON document (see internal/obs), so the
	// same observability surface is reachable over the journal protocol
	// as over fremontd's -metrics-addr HTTP endpoint.
	OpStats byte = 10
	// OpScan is the cursor-paged read: the request names a record kind, a
	// record-ID cursor, a page limit, and (for interfaces) a filter query;
	// the response carries one bounded page plus the cursor to resume from.
	// The server holds its read lock only for the page, never the journal.
	OpScan byte = 11
	// OpChanges is the incremental read: records mutated after a
	// modification sequence cursor, oldest change first. Replication is
	// built on it — an unchanged journal answers with an empty page.
	OpChanges byte = 12
	// OpSubscribe turns the connection into a push stream: after one OK
	// response the server delivers change records as they commit (see
	// subscribe.go). Not valid inside a batch.
	OpSubscribe byte = 13
	// OpNamespace scopes the rest of the connection to a tenant namespace
	// (see namespace.go): every subsequent request on the connection reads
	// and writes that tenant's journal. Inside the WAL the same opcode
	// leads an envelope frame that scopes one logged request to a tenant.
	// Not valid inside a batch.
	OpNamespace byte = 14
)

// ScanVersion is the version byte leading OpScan and OpChanges request
// bodies, so cursor semantics can evolve without a new opcode.
const ScanVersion byte = 1

// MaxScanPage bounds the page limit a scan or changes request may ask
// for; the server clamps larger requests.
const MaxScanPage = 4096

// OpName returns the stable lowercase name of an opcode, used as the
// metric label for per-operation counters and latency histograms.
func OpName(op byte) string {
	switch op {
	case OpStoreInterface:
		return "store_interface"
	case OpStoreGateway:
		return "store_gateway"
	case OpStoreSubnet:
		return "store_subnet"
	case OpGetInterfaces:
		return "get_interfaces"
	case OpGetGateways:
		return "get_gateways"
	case OpGetSubnets:
		return "get_subnets"
	case OpDelete:
		return "delete"
	case OpPing:
		return "ping"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpScan:
		return "scan"
	case OpChanges:
		return "changes"
	case OpSubscribe:
		return "subscribe"
	case OpNamespace:
		return "namespace"
	}
	return "unknown"
}

// Response status codes.
const (
	StatusOK    byte = 0
	StatusError byte = 1
)

// MaxMessage bounds a single message (a full class-B journal dump fits
// comfortably).
const MaxMessage = 64 << 20

// MaxBatch bounds the number of sub-requests in one OpBatch frame.
const MaxBatch = 1024

// ErrTooLarge is returned for oversized frames.
var ErrTooLarge = errors.New("jwire: message exceeds size limit")

// ErrBatchTooLarge is returned for batches exceeding MaxBatch sub-requests.
var ErrBatchTooLarge = errors.New("jwire: batch exceeds MaxBatch sub-requests")

// --- Buffer primitives ---------------------------------------------------

// Writer accumulates an encoded payload.
type Writer struct{ B []byte }

func (w *Writer) U8(v byte)    { w.B = append(w.B, v) }
func (w *Writer) Bool(v bool)  { w.U8(b2u(v)) }
func (w *Writer) U16(v uint16) { w.B = binary.BigEndian.AppendUint16(w.B, v) }
func (w *Writer) U32(v uint32) { w.B = binary.BigEndian.AppendUint32(w.B, v) }
func (w *Writer) U64(v uint64) { w.B = binary.BigEndian.AppendUint64(w.B, v) }
func (w *Writer) Int(v int)    { w.U64(uint64(int64(v))) }
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.B = append(w.B, s...)
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.B = append(w.B, b...)
}

func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.U64(0)
		return
	}
	w.U64(uint64(t.UnixNano()))
}
func (w *Writer) IP(ip pkt.IP)     { w.U32(uint32(ip)) }
func (w *Writer) Mask(m pkt.Mask)  { w.U32(uint32(m)) }
func (w *Writer) MAC(m pkt.MAC)    { w.B = append(w.B, m[:]...) }
func (w *Writer) ID(id journal.ID) { w.U32(uint32(id)) }

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Reader consumes an encoded payload; the first decode error sticks.
type Reader struct {
	B   []byte
	off int
	Err error
}

func (r *Reader) fail() {
	if r.Err == nil {
		r.Err = fmt.Errorf("jwire: truncated message at offset %d", r.off)
	}
}

func (r *Reader) U8() byte {
	if r.Err != nil || r.off+1 > len(r.B) {
		r.fail()
		return 0
	}
	v := r.B[r.off]
	r.off++
	return v
}

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) U16() uint16 {
	if r.Err != nil || r.off+2 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.B[r.off:])
	r.off += 2
	return v
}

func (r *Reader) U32() uint32 {
	if r.Err != nil || r.off+4 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.B[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if r.Err != nil || r.off+8 > len(r.B) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.B[r.off:])
	r.off += 8
	return v
}

func (r *Reader) Int() int { return int(int64(r.U64())) }

func (r *Reader) String() string {
	n := int(r.U32())
	if r.Err != nil || n < 0 || r.off+n > len(r.B) {
		r.fail()
		return ""
	}
	s := string(r.B[r.off : r.off+n])
	r.off += n
	return s
}

// Bytes reads a length-prefixed byte string. The result aliases the
// Reader's buffer; copy it to retain beyond the buffer's lifetime.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.Err != nil || n < 0 || r.off+n > len(r.B) {
		r.fail()
		return nil
	}
	b := r.B[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *Reader) Time() time.Time {
	v := r.U64()
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(v)).UTC()
}

func (r *Reader) IP() pkt.IP      { return pkt.IP(r.U32()) }
func (r *Reader) MaskV() pkt.Mask { return pkt.Mask(r.U32()) }

func (r *Reader) MAC() pkt.MAC {
	var m pkt.MAC
	if r.Err != nil || r.off+6 > len(r.B) {
		r.fail()
		return m
	}
	copy(m[:], r.B[r.off:])
	r.off += 6
	return m
}

func (r *Reader) ID() journal.ID { return journal.ID(r.U32()) }

// Remaining reports undecoded bytes.
func (r *Reader) Remaining() int { return len(r.B) - r.off }

// --- Framing -------------------------------------------------------------

// frameCoalesceMax bounds the payload size WriteFrame copies into a
// pooled buffer to emit header+payload as one Write. Larger payloads
// use a vectored write instead of paying the copy.
const frameCoalesceMax = 64 << 10

// bufPool recycles frame-sized scratch buffers across WriteFrame's
// coalesced path and the GetBuf/PutBuf helpers, so the per-request
// framing hot path allocates nothing in steady state.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf returns a pooled zero-length scratch buffer. Pass it (or any
// slice derived from its backing array) back via PutBuf when done.
func GetBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

// PutBuf recycles a buffer obtained from GetBuf (or any buffer whose
// owner is done with it). The caller must not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > frameCoalesceMax {
		return // keep pooled buffers bounded
	}
	b = b[:0]
	bufPool.Put(&b)
}

// WriteFrame writes one length-prefixed message. Small payloads are
// coalesced with the header into a single Write via a pooled buffer
// (one syscall on an unbuffered conn, no tiny-header write); large ones
// go out as a vectored header+payload pair, which net.Buffers turns
// into writev on real sockets.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxMessage {
		return ErrTooLarge
	}
	if len(payload) <= frameCoalesceMax {
		bp := bufPool.Get().(*[]byte)
		b := append((*bp)[:0], 0, 0, 0, 0)
		binary.BigEndian.PutUint32(b, uint32(len(payload)))
		b = append(b, payload...)
		_, err := w.Write(b)
		if cap(b) <= frameCoalesceMax+4 {
			*bp = b[:0]
			bufPool.Put(bp)
		}
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame reads one length-prefixed message into a fresh buffer.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameBuf(r, nil)
}

// ReadFrameBuf reads one length-prefixed message, reusing buf's backing
// array when its capacity suffices (allocating only when the frame is
// larger). The returned payload may alias buf; a caller recycling
// buffers owns the result until it hands the buffer back.
func ReadFrameBuf(r io.Reader, buf []byte) ([]byte, error) {
	// The header is read through buf (not a stack array) because a byte
	// slice passed through the io.Reader interface escapes: a fresh
	// 4-byte array here would put an allocation on every frame.
	hdr := buf
	if cap(hdr) < 4 {
		hdr = make([]byte, 4)
		if buf == nil {
			buf = hdr // a nil buf still serves tiny frames without a second alloc
		}
	}
	hdr = hdr[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxMessage {
		return nil, ErrTooLarge
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// --- Batch encoding ------------------------------------------------------

// PutBatch encodes the body of an OpBatch request (the caller writes the
// opcode first, as for every other operation): a sub-request count followed
// by length-prefixed sub-request payloads, each beginning with its own
// opcode. Nested batches are rejected by the server.
func PutBatch(w *Writer, subs [][]byte) error {
	if len(subs) > MaxBatch {
		return ErrBatchTooLarge
	}
	w.U32(uint32(len(subs)))
	for _, sub := range subs {
		w.Bytes(sub)
	}
	return nil
}

// GetBatch decodes the body of an OpBatch request. On any malformed input
// it sets r.Err and returns nil; the sub-slices alias r.B.
func GetBatch(r *Reader) [][]byte {
	n := int(r.U32())
	if r.Err != nil {
		return nil
	}
	if n > MaxBatch {
		r.Err = ErrBatchTooLarge
		return nil
	}
	subs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		sub := r.Bytes()
		if r.Err != nil {
			return nil
		}
		subs = append(subs, sub)
	}
	return subs
}

// --- Observation encoding ------------------------------------------------

// PutIfaceObs encodes an interface observation.
func PutIfaceObs(w *Writer, o journal.IfaceObs) {
	w.IP(o.IP)
	w.Bool(o.HasMAC)
	w.MAC(o.MAC)
	w.String(o.Name)
	w.Bool(o.HasMask)
	w.Mask(o.Mask)
	w.Bool(o.RIPSource)
	w.Bool(o.RIPPromiscuous)
	w.Bool(o.MaskProbeFailed)
	w.U8(byte(o.Source))
	w.Time(o.At)
}

// GetIfaceObs decodes an interface observation.
func GetIfaceObs(r *Reader) journal.IfaceObs {
	return journal.IfaceObs{
		IP:              r.IP(),
		HasMAC:          r.Bool(),
		MAC:             r.MAC(),
		Name:            r.String(),
		HasMask:         r.Bool(),
		Mask:            r.MaskV(),
		RIPSource:       r.Bool(),
		RIPPromiscuous:  r.Bool(),
		MaskProbeFailed: r.Bool(),
		Source:          journal.Source(r.U8()),
		At:              r.Time(),
	}
}

// PutGatewayObs encodes a gateway observation.
func PutGatewayObs(w *Writer, o journal.GatewayObs) {
	w.U32(uint32(len(o.IfaceIPs)))
	for _, ip := range o.IfaceIPs {
		w.IP(ip)
	}
	w.U32(uint32(len(o.Subnets)))
	for _, sn := range o.Subnets {
		w.IP(sn.Addr)
		w.Mask(sn.Mask)
	}
	w.Bool(o.Questionable)
	w.U8(byte(o.Source))
	w.Time(o.At)
}

// GetGatewayObs decodes a gateway observation.
func GetGatewayObs(r *Reader) journal.GatewayObs {
	var o journal.GatewayObs
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		o.IfaceIPs = append(o.IfaceIPs, r.IP())
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		o.Subnets = append(o.Subnets, pkt.Subnet{Addr: r.IP(), Mask: r.MaskV()})
	}
	o.Questionable = r.Bool()
	o.Source = journal.Source(r.U8())
	o.At = r.Time()
	return o
}

// PutSubnetObs encodes a subnet observation.
func PutSubnetObs(w *Writer, o journal.SubnetObs) {
	w.IP(o.Subnet.Addr)
	w.Mask(o.Subnet.Mask)
	w.U32(uint32(len(o.GatewayIPs)))
	for _, ip := range o.GatewayIPs {
		w.IP(ip)
	}
	w.Int(o.Metric)
	w.Int(o.HostCount)
	w.IP(o.LoAddr)
	w.IP(o.HiAddr)
	w.U8(byte(o.Source))
	w.Time(o.At)
}

// GetSubnetObs decodes a subnet observation.
func GetSubnetObs(r *Reader) journal.SubnetObs {
	var o journal.SubnetObs
	o.Subnet.Addr = r.IP()
	o.Subnet.Mask = r.MaskV()
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		o.GatewayIPs = append(o.GatewayIPs, r.IP())
	}
	o.Metric = r.Int()
	o.HostCount = r.Int()
	o.LoAddr = r.IP()
	o.HiAddr = r.IP()
	o.Source = journal.Source(r.U8())
	o.At = r.Time()
	return o
}

// PutQuery encodes a Get query.
func PutQuery(w *Writer, q journal.Query) {
	w.U8(byte(q.Kind))
	w.Bool(q.HasID)
	w.ID(q.ByID)
	w.Bool(q.HasIP)
	w.IP(q.ByIP)
	w.Bool(q.HasMAC)
	w.MAC(q.ByMAC)
	w.String(q.ByName)
	w.Bool(q.HasRange)
	w.IP(q.IPLo)
	w.IP(q.IPHi)
	w.Time(q.ModifiedSince)
}

// GetQuery decodes a Get query.
func GetQuery(r *Reader) journal.Query {
	return journal.Query{
		Kind:          journal.RecordKind(r.U8()),
		HasID:         r.Bool(),
		ByID:          r.ID(),
		HasIP:         r.Bool(),
		ByIP:          r.IP(),
		HasMAC:        r.Bool(),
		ByMAC:         r.MAC(),
		ByName:        r.String(),
		HasRange:      r.Bool(),
		IPLo:          r.IP(),
		IPHi:          r.IP(),
		ModifiedSince: r.Time(),
	}
}

// --- Scan / Changes encoding ---------------------------------------------

// ErrScanVersion is returned when a scan or changes request carries an
// unsupported version byte.
var ErrScanVersion = errors.New("jwire: unsupported scan version")

// ScanReq is a cursor-paged read request. Limit <= 0 asks for the
// server's default page; the server clamps limits above MaxScanPage.
// Filter applies to interface scans only.
type ScanReq struct {
	Kind   journal.RecordKind
	Cursor journal.ID
	Limit  int
	Filter journal.Query
}

// PutScanReq encodes the body of an OpScan request (the caller writes
// the opcode first).
func PutScanReq(w *Writer, req ScanReq) {
	w.U8(ScanVersion)
	w.U8(byte(req.Kind))
	w.ID(req.Cursor)
	w.U32(uint32(req.Limit))
	PutQuery(w, req.Filter)
}

// GetScanReq decodes the body of an OpScan request; an unsupported
// version sets r.Err to ErrScanVersion.
func GetScanReq(r *Reader) ScanReq {
	if v := r.U8(); r.Err == nil && v != ScanVersion {
		r.Err = ErrScanVersion
	}
	return ScanReq{
		Kind:   journal.RecordKind(r.U8()),
		Cursor: r.ID(),
		Limit:  int(int32(r.U32())),
		Filter: GetQuery(r),
	}
}

// ChangesReq is an incremental read request: records mutated after
// modification sequence number After.
type ChangesReq struct {
	Kind  journal.RecordKind
	After uint64
	Limit int
}

// PutChangesReq encodes the body of an OpChanges request.
func PutChangesReq(w *Writer, req ChangesReq) {
	w.U8(ScanVersion)
	w.U8(byte(req.Kind))
	w.U64(req.After)
	w.U32(uint32(req.Limit))
}

// GetChangesReq decodes the body of an OpChanges request; an unsupported
// version sets r.Err to ErrScanVersion.
func GetChangesReq(r *Reader) ChangesReq {
	if v := r.U8(); r.Err == nil && v != ScanVersion {
		r.Err = ErrScanVersion
	}
	return ChangesReq{
		Kind:  journal.RecordKind(r.U8()),
		After: r.U64(),
		Limit: int(int32(r.U32())),
	}
}

// --- Record encoding -----------------------------------------------------

func putStamp(w *Writer, s journal.Stamp) {
	w.Time(s.Discovered)
	w.Time(s.Changed)
	w.Time(s.Verified)
}

func getStamp(r *Reader) journal.Stamp {
	return journal.Stamp{Discovered: r.Time(), Changed: r.Time(), Verified: r.Time()}
}

// PutInterfaceRec encodes a full interface record.
func PutInterfaceRec(w *Writer, rec *journal.InterfaceRec) {
	w.ID(rec.ID)
	w.IP(rec.IP)
	w.MAC(rec.MAC)
	w.String(rec.Name)
	w.Mask(rec.Mask)
	w.U32(uint32(len(rec.Aliases)))
	for _, a := range rec.Aliases {
		w.String(a)
	}
	w.ID(rec.Gateway)
	w.Bool(rec.RIPSource)
	w.Bool(rec.RIPPromiscuous)
	w.Int(rec.MaskProbeFails)
	w.U8(byte(rec.Sources))
	putStamp(w, rec.Stamp)
	putStamp(w, rec.MACStamp)
	putStamp(w, rec.NameStamp)
	putStamp(w, rec.MaskStamp)
}

// GetInterfaceRec decodes a full interface record.
func GetInterfaceRec(r *Reader) *journal.InterfaceRec {
	rec := &journal.InterfaceRec{
		ID:   r.ID(),
		IP:   r.IP(),
		MAC:  r.MAC(),
		Name: r.String(),
		Mask: r.MaskV(),
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		rec.Aliases = append(rec.Aliases, r.String())
	}
	rec.Gateway = r.ID()
	rec.RIPSource = r.Bool()
	rec.RIPPromiscuous = r.Bool()
	rec.MaskProbeFails = r.Int()
	rec.Sources = journal.Source(r.U8())
	rec.Stamp = getStamp(r)
	rec.MACStamp = getStamp(r)
	rec.NameStamp = getStamp(r)
	rec.MaskStamp = getStamp(r)
	return rec
}

// PutGatewayRec encodes a full gateway record.
func PutGatewayRec(w *Writer, rec *journal.GatewayRec) {
	w.ID(rec.ID)
	w.U32(uint32(len(rec.Ifaces)))
	for _, id := range rec.Ifaces {
		w.ID(id)
	}
	w.U32(uint32(len(rec.Subnets)))
	for _, sn := range rec.Subnets {
		w.IP(sn.Addr)
		w.Mask(sn.Mask)
	}
	w.Bool(rec.Questionable)
	w.U8(byte(rec.Sources))
	putStamp(w, rec.Stamp)
}

// GetGatewayRec decodes a full gateway record.
func GetGatewayRec(r *Reader) *journal.GatewayRec {
	rec := &journal.GatewayRec{ID: r.ID()}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		rec.Ifaces = append(rec.Ifaces, r.ID())
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		rec.Subnets = append(rec.Subnets, pkt.Subnet{Addr: r.IP(), Mask: r.MaskV()})
	}
	rec.Questionable = r.Bool()
	rec.Sources = journal.Source(r.U8())
	rec.Stamp = getStamp(r)
	return rec
}

// PutSubnetRec encodes a full subnet record.
func PutSubnetRec(w *Writer, rec *journal.SubnetRec) {
	w.ID(rec.ID)
	w.IP(rec.Subnet.Addr)
	w.Mask(rec.Subnet.Mask)
	w.U32(uint32(len(rec.Gateways)))
	for _, id := range rec.Gateways {
		w.ID(id)
	}
	w.Int(rec.HostCount)
	w.IP(rec.LoAddr)
	w.IP(rec.HiAddr)
	w.Int(rec.RIPMetric)
	w.U8(byte(rec.Sources))
	putStamp(w, rec.Stamp)
}

// GetSubnetRec decodes a full subnet record.
func GetSubnetRec(r *Reader) *journal.SubnetRec {
	rec := &journal.SubnetRec{ID: r.ID()}
	rec.Subnet.Addr = r.IP()
	rec.Subnet.Mask = r.MaskV()
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		rec.Gateways = append(rec.Gateways, r.ID())
	}
	rec.HostCount = r.Int()
	rec.LoAddr = r.IP()
	rec.HiAddr = r.IP()
	rec.RIPMetric = r.Int()
	rec.Sources = journal.Source(r.U8())
	rec.Stamp = getStamp(r)
	return rec
}
