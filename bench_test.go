// Package fremont's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (regenerating the same rows the paper
// reports), plus ablation benchmarks for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks report custom metrics alongside wall time: discovered
// counts, simulated completion times, and packets offered to the network,
// so shape comparisons against the paper drop out of the bench output.
package fremont_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fremont/internal/core"
	"fremont/internal/experiments"
	"fremont/internal/explorer"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/jwire"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/grid"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

const benchSeed = 1993

// BenchmarkTable2_JournalStorage populates a journal at the paper's
// class-B example scale (16k interfaces, 192 gateways, 192 subnets) and
// measures per-record storage.
func BenchmarkTable2_JournalStorage(b *testing.B) {
	var r experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2()
	}
	f := r.Footprint
	b.ReportMetric(float64(f.PerInterface()), "B/interface")
	b.ReportMetric(float64(f.PerGateway()), "B/gateway")
	b.ReportMetric(float64(f.PerSubnet()), "B/subnet")
	b.ReportMetric(float64(f.Total())/(1<<20), "MB-total")
}

// BenchmarkTable4_ModuleCharacteristics measures each module's completion
// time and offered network load on the standard topologies.
func BenchmarkTable4_ModuleCharacteristics(b *testing.B) {
	var r experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.TimeToComplete.Seconds(), row.Module+"-sim-sec")
	}
}

// BenchmarkTable5_InterfaceDiscovery reruns the department-subnet
// discovery comparison (simulating over a day of network time per
// iteration).
func BenchmarkTable5_InterfaceDiscovery(b *testing.B) {
	var r experiments.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		b.ReportMetric(float64(row.Interfaces), row.Module+"-"+shortNote(row.Note))
	}
}

func shortNote(n string) string {
	switch n {
	case "Run for 30 min":
		return "30m"
	case "Run for 24 hours":
		return "24h"
	case "Subnets with gateways identified":
		return "gw-subnets"
	default:
		return "found"
	}
}

// BenchmarkTable6_SubnetDiscovery reruns the campus-wide subnet discovery
// comparison.
func BenchmarkTable6_SubnetDiscovery(b *testing.B) {
	var r experiments.Table6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		b.ReportMetric(float64(row.Subnets), row.Module+"-"+shortNote(row.Comment))
	}
}

// BenchmarkTable7_FullDiscovery measures a complete discovery pass over
// the campus (every module plus correlation).
func BenchmarkTable7_FullDiscovery(b *testing.B) {
	var r experiments.Table7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.IfacesWithIP), "interfaces")
	b.ReportMetric(float64(r.Gateways), "gateways")
	b.ReportMetric(float64(r.Subnets), "subnets")
}

// BenchmarkTable8_Analysis measures the fault-injection scenario: days of
// simulated watching plus the analysis programs.
func BenchmarkTable8_Analysis(b *testing.B) {
	var r experiments.Table8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Problems)), "findings")
}

// BenchmarkFigure2_Topology measures extraction and rendering of the
// discovered network structure.
func BenchmarkFigure2_Topology(b *testing.B) {
	var r experiments.Figure2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Topology.Gateways)), "gateways")
	b.ReportMetric(float64(len(r.Topology.Subnets)), "subnets")
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblation_IndexVsScan compares the Journal's AVL-indexed lookups
// (the paper's design) against a linear scan of all records.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	j := journal.New()
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		j.StoreInterface(journal.IfaceObs{IP: pkt.IP(i), Source: journal.SrcICMP, At: at})
	}
	b.Run("avl-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			recs := j.Interfaces(journal.Query{ByIP: pkt.IP(i % n), HasIP: true})
			if len(recs) != 1 {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		all := j.Interfaces(journal.Query{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			want := pkt.IP(i % n)
			found := false
			for _, r := range all {
				if r.IP == want {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("scan failed")
			}
		}
	})
}

// tracerouteAblation runs traceroute over the campus with the given
// parameters and reports subnets found and packets spent.
func tracerouteAblation(b *testing.B, p explorer.Params) {
	b.Helper()
	var subnets, packets int
	var simTime time.Duration
	for i := 0; i < b.N; i++ {
		cfg := campus.DefaultConfig()
		cfg.Seed = benchSeed
		cfg.Chatter = false
		cfg.Liveness = false
		sys := core.NewSystem(cfg)
		sys.Advance(5 * time.Minute)
		if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
			b.Fatal(err)
		}
		rep, err := sys.RunModule(explorer.Tracerouter{}, p)
		if err != nil {
			b.Fatal(err)
		}
		subnets = len(rep.Subnets)
		packets = rep.PacketsSent
		simTime = rep.Elapsed()
	}
	b.ReportMetric(float64(subnets), "subnets")
	b.ReportMetric(float64(packets), "packets")
	b.ReportMetric(simTime.Seconds(), "sim-sec")
}

// BenchmarkAblation_TracerouteAddrs compares the paper's three-address
// probing per subnet against a single host-zero probe: completeness per
// packet.
func BenchmarkAblation_TracerouteAddrs(b *testing.B) {
	b.Run("3-addresses", func(b *testing.B) {
		tracerouteAblation(b, explorer.Params{TraceAddrsPerSubnet: 3})
	})
	b.Run("1-address", func(b *testing.B) {
		tracerouteAblation(b, explorer.Params{TraceAddrsPerSubnet: 1})
	})
}

// BenchmarkAblation_TracerouteParallelism compares the paper's 80
// outstanding probes against a serial trace — the wall-clock payoff of the
// "continues to send packets towards as yet unreached destinations"
// design.
func BenchmarkAblation_TracerouteParallelism(b *testing.B) {
	b.Run("parallel-80", func(b *testing.B) {
		tracerouteAblation(b, explorer.Params{TraceMaxParallel: 80})
	})
	b.Run("serial", func(b *testing.B) {
		tracerouteAblation(b, explorer.Params{TraceMaxParallel: 1, TraceAddrsPerSubnet: 3})
	})
}

// BenchmarkAblation_ClueDirectedTraceroute compares RIP-clue-directed
// targeting (the Journal feed) against blindly sweeping every possible
// /24 of the class B network.
func BenchmarkAblation_ClueDirectedTraceroute(b *testing.B) {
	b.Run("clue-directed", func(b *testing.B) {
		tracerouteAblation(b, explorer.Params{})
	})
	b.Run("blind-sweep", func(b *testing.B) {
		var all []pkt.Subnet
		for third := 0; third < 255; third++ {
			all = append(all, pkt.SubnetOf(pkt.IPv4(128, 138, byte(third), 0), pkt.MaskBits(24)))
		}
		tracerouteAblation(b, explorer.Params{Subnets: all})
	})
}

// BenchmarkAblation_BcastVsSeq compares broadcast ping against sequential
// ping on the same dense subnet: time versus completeness.
func BenchmarkAblation_BcastVsSeq(b *testing.B) {
	run := func(b *testing.B, m explorer.Module, p explorer.Params) {
		var found int
		var simTime time.Duration
		for i := 0; i < b.N; i++ {
			cfg := campus.DefaultConfig()
			cfg.Seed = benchSeed
			cfg.Liveness = false // isolate the collision-vs-time tradeoff
			cfg.Chatter = false
			sys := core.NewDepartmentSystem(cfg)
			sys.Advance(5 * time.Minute)
			rep, err := sys.RunModule(m, p)
			if err != nil {
				b.Fatal(err)
			}
			found = len(rep.Interfaces)
			simTime = rep.Elapsed()
		}
		b.ReportMetric(float64(found), "interfaces")
		b.ReportMetric(simTime.Seconds(), "sim-sec")
	}
	b.Run("broadcast", func(b *testing.B) {
		run(b, explorer.BroadcastPing{}, explorer.Params{})
	})
	b.Run("sequential", func(b *testing.B) {
		sn := pkt.SubnetOf(pkt.IPv4(128, 138, 238, 0), pkt.MaskBits(24))
		run(b, explorer.SeqPing{}, explorer.Params{RangeLo: sn.FirstHost(), RangeHi: sn.LastHost()})
	})
}

// BenchmarkJournalConcurrentReadWrite measures the journal's read-path
// parallelism under its internal read/write lock: pure parallel point
// queries scale with GOMAXPROCS, and a mostly-read mix (1 store per 16
// operations) stays close to that, because readers no longer serialize
// behind a store-holding global mutex.
func BenchmarkJournalConcurrentReadWrite(b *testing.B) {
	const n = 1 << 14
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	seed := func() *journal.Journal {
		j := journal.New()
		for i := 0; i < n; i++ {
			j.StoreInterface(journal.IfaceObs{IP: pkt.IP(i), Source: journal.SrcICMP, At: at})
		}
		return j
	}
	b.Run("parallel-reads", func(b *testing.B) {
		j := seed()
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				recs := j.Interfaces(journal.Query{ByIP: pkt.IP(i % n), HasIP: true})
				if len(recs) != 1 {
					b.Fatal("lookup failed")
				}
			}
		})
	})
	b.Run("parallel-mixed-1w15r", func(b *testing.B) {
		j := seed()
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				if i%16 == 0 {
					j.StoreInterface(journal.IfaceObs{IP: pkt.IP(i % n), Source: journal.SrcICMP, At: at})
					continue
				}
				if recs := j.Interfaces(journal.Query{ByIP: pkt.IP(i % n), HasIP: true}); len(recs) == 0 {
					b.Fatal("lookup failed")
				}
			}
		})
	})
	b.Run("serial-reads", func(b *testing.B) {
		j := seed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if recs := j.Interfaces(journal.Query{ByIP: pkt.IP(i % n), HasIP: true}); len(recs) != 1 {
				b.Fatal("lookup failed")
			}
		}
	})
}

// BenchmarkJwireBatchVsSingle measures the round-trip amortization of
// OpBatch over loopback TCP: 64 stores as 64 request/reply exchanges
// versus the same 64 stores in one batched frame.
func BenchmarkJwireBatchVsSingle(b *testing.B) {
	const batchSize = 64
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	start := func(b *testing.B) *jclient.Client {
		b.Helper()
		s := jserver.New(nil)
		if err := s.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		c, err := jclient.Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	b.Run("single-64", func(b *testing.B) {
		c := start(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batchSize; k++ {
				if _, _, err := c.StoreInterface(journal.IfaceObs{
					IP: pkt.IP(i*batchSize + k), Source: journal.SrcICMP, At: at,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "stores/sec")
	})
	b.Run("batch-64", func(b *testing.B) {
		c := start(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var batch jclient.Batch
			for k := 0; k < batchSize; k++ {
				batch.StoreInterface(journal.IfaceObs{
					IP: pkt.IP(i*batchSize + k), Source: journal.SrcICMP, At: at,
				})
			}
			results, err := c.StoreBatch(&batch)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "stores/sec")
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed on the full
// campus with RIP churning: simulated seconds per wall second, scheduler
// events per wall second, and heap allocations per delivered frame.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := campus.DefaultConfig()
	cfg.Seed = benchSeed
	cfg.Chatter = false
	cfg.Liveness = false
	c := campus.Build(cfg)
	events0 := c.Net.Sched.Stats().Executed
	frames0 := c.Net.TotalFrames()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Net.Run(time.Minute)
	}
	b.StopTimer()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	wall := b.Elapsed().Seconds()
	simSec := float64(b.N) * 60
	b.ReportMetric(simSec/wall, "sim-sec/wall-sec")
	b.ReportMetric(float64(c.Net.Sched.Stats().Executed-events0)/wall, "events/sec")
	if frames := c.Net.TotalFrames() - frames0; frames > 0 {
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(frames), "allocs/frame")
	}
}

// BenchmarkCampus10k is the scale gate: the paper's campus extrapolated
// to 10,000 department subnets and 100,000 hosts, built as 16 shards and
// run in parallel under conservative time synchronization (see
// netsim.Cluster and the grid package). It reports simulation throughput
// and heap allocations per delivered frame; tools/benchgate.py holds the
// topology size and the per-frame allocation budget against
// bench/BENCH_scale_baseline.json. Short mode (CI) simulates a reduced
// virtual duration on the same full-size topology.
func BenchmarkCampus10k(b *testing.B) {
	cfg := grid.InternetScale()
	g := grid.Build(cfg)
	defer g.Close()

	simD := 30 * time.Second
	if testing.Short() {
		simD = 10 * time.Second
	}
	// Warm to steady state: one full RIP period plus margin, so every
	// host's lazily-materialized state (ARP caches, pending tables) and
	// every advertiser's scratch buffers exist before measurement. What
	// remains is the true per-frame steady-state cost.
	g.Run(45 * time.Second)
	frames0 := g.TotalFrames()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(simD)
	}
	b.StopTimer()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	wall := b.Elapsed().Seconds()
	// ReportMetric after the timed section only: ResetTimer deletes
	// user-reported metrics, so the topology-size gates must be set here.
	b.ReportMetric(float64(g.Hosts), "hosts")
	b.ReportMetric(float64(len(g.Subnets)), "subnets")
	b.ReportMetric(float64(g.Nodes()), "nodes")
	b.ReportMetric(float64(b.N)*simD.Seconds()/wall, "sim-sec/wall-sec")
	if frames := g.TotalFrames() - frames0; frames > 0 {
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(frames), "allocs/frame")
	}
	st := g.Cluster.Stats()
	b.ReportMetric(float64(st.CrossFrames)/float64(b.N), "cross-frames/run")
}

// BenchmarkAblation_MultiVantage measures the paper's multi-location
// traceroute idea: "Running this module from multiple locations in the
// network will acquire more complete information about the router
// interface addresses."
func BenchmarkAblation_MultiVantage(b *testing.B) {
	run := func(b *testing.B, vantages int) {
		var gwIfaces int
		for i := 0; i < b.N; i++ {
			cfg := campus.DefaultConfig()
			cfg.Seed = benchSeed
			cfg.Chatter = false
			cfg.Liveness = false
			sys := core.NewSystem(cfg)
			// Per the paper's premise, gateways that do not accept
			// host-zero packets leave their far-side interfaces invisible
			// from a single vantage point.
			for _, gw := range sys.Campus.Gateways {
				gw.TreatsHostZeroAsSelf = false
			}
			sys.Advance(5 * time.Minute)
			if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.RunModule(explorer.Tracerouter{}, explorer.Params{}); err != nil {
				b.Fatal(err)
			}
			if vantages > 1 {
				// A host on a far, healthy department subnet.
				for _, sn := range sys.Campus.Live {
					if sn.Addr == sys.Campus.Backbone.Addr || sn.Addr == sys.Campus.CSSubnet.Addr ||
						sys.Campus.SilentBehind[sn.Addr] {
						continue
					}
					if ifc := sys.Campus.Net.IfaceByIP(sn.Addr + 10); ifc != nil {
						if _, err := sys.RunModuleOn(ifc.Node, explorer.Tracerouter{}, explorer.Params{}); err != nil {
							b.Fatal(err)
						}
						break
					}
				}
			}
			if _, err := sys.Correlate(); err != nil {
				b.Fatal(err)
			}
			// Count interfaces of firmly-identified gateways (host-zero
			// responders are tagged questionable).
			gws, err := sys.Sink.Gateways()
			if err != nil {
				b.Fatal(err)
			}
			firm := map[journal.ID]bool{}
			for _, gw := range gws {
				if !gw.Questionable {
					firm[gw.ID] = true
				}
			}
			recs, err := sys.Sink.Interfaces(journal.Query{})
			if err != nil {
				b.Fatal(err)
			}
			gwIfaces = 0
			for _, r := range recs {
				if firm[r.Gateway] {
					gwIfaces++
				}
			}
		}
		b.ReportMetric(float64(gwIfaces), "gw-interfaces")
	}
	b.Run("one-vantage", func(b *testing.B) { run(b, 1) })
	b.Run("two-vantages", func(b *testing.B) { run(b, 2) })
}

// BenchmarkWALAppend measures the durability layer's append cost across
// the three fsync policies: `always` is the zero-loss configuration the
// acceptance bar uses, `interval` amortizes the fsync over a background
// window, `never` shows the raw framing+write cost.
func BenchmarkWALAppend(b *testing.B) {
	var w jwire.Writer
	w.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&w, journal.IfaceObs{
		IP: pkt.IPv4(10, 0, 0, 1), HasMAC: true, MAC: pkt.MAC{8, 0, 0x20, 1, 2, 3},
		Name: "anchor.cs.colorado.edu", HasMask: true, Mask: pkt.MaskBits(24),
		Source: journal.SrcARP, At: time.Unix(727950000, 0),
	})
	payload := w.B

	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			l, err := wal.Open(wal.Options{Dir: b.TempDir(), Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(l.Stats().Fsyncs), "fsyncs")
		})
	}
}

// BenchmarkRecoveryReplay measures startup recovery: replaying a WAL of
// store requests through the shared jwire dispatch into a fresh journal
// — the work a restarted server does before it can serve.
func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 5000
	dir := b.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	var w jwire.Writer
	for i := 0; i < records; i++ {
		w.B = w.B[:0]
		w.U8(jwire.OpStoreInterface)
		jwire.PutIfaceObs(&w, journal.IfaceObs{
			IP: pkt.IP(uint32(pkt.IPv4(10, 0, 0, 0)) + uint32(i)), Source: journal.SrcICMP,
			At: time.Unix(727950000, 0),
		})
		if _, err := l.Append(w.B); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		j := journal.New()
		n, err := rl.Replay(func(lsn uint64, payload []byte) error {
			jwire.ReplayPayload(j, payload)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records || j.NumInterfaces() != records {
			b.Fatalf("replayed %d records into %d interfaces", n, j.NumInterfaces())
		}
		rl.Close()
	}
	b.ReportMetric(records, "records/recovery")
}
