// Problem detection: the paper's Table 8 scenario. A department wire with
// planted faults — a duplicate IP assignment, a mid-run hardware change,
// two hosts with wrong subnet masks, a promiscuous RIP host, a machine
// silently removed from the network, and a proxy-ARP device — is watched
// and probed for a few simulated days, and the analysis programs name each
// culprit from the Journal's time-stamped records.
//
//	go run ./examples/problem-detection
package main

import (
	"fmt"
	"log"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/netsim/campus"
)

func main() {
	cfg := campus.DefaultConfig()
	cfg.Seed = 11
	cfg.InjectFaults = true
	sys := core.NewDepartmentSystem(cfg)
	f := sys.Campus.Faults

	fmt.Println("planted faults:")
	fmt.Printf("  duplicate address:  %s\n", f.DuplicateIP)
	fmt.Printf("  hardware change:    %s (at +%v)\n", f.HardwareChangeIP, f.HardwareChangeAt)
	fmt.Printf("  wrong masks:        %v\n", f.WrongMaskIPs)
	fmt.Printf("  promiscuous RIP:    %s\n", f.PromiscuousIP)
	fmt.Printf("  removed host:       %s (at +%v)\n", f.RemovedIP, f.RemovedAt)
	fmt.Printf("  proxy-ARP range:    %v\n", f.ProxyARPRange)
	fmt.Println()

	// Two days of passive ARP watching straddle the hardware change and
	// the removal; the probe sweeps collect MACs, masks and RIP sources.
	steps := []struct {
		name string
		m    explorer.Module
		p    explorer.Params
	}{
		{"watching ARP for 48h", explorer.ARPwatch{}, explorer.Params{Duration: 48 * time.Hour}},
		{"sweeping the wire", explorer.EtherHostProbe{}, explorer.Params{}},
		{"asking for masks", explorer.SubnetMasks{}, explorer.Params{}},
		{"watching RIP", explorer.RIPwatch{}, explorer.Params{Duration: 3 * time.Minute}},
	}
	for _, s := range steps {
		fmt.Printf("%s...\n", s.name)
		if _, err := sys.RunModule(s.m, s.p); err != nil {
			log.Fatal(err)
		}
	}
	// Let three more days pass with short daily watches, so the removed
	// host's record visibly stops being verified.
	for day := 0; day < 3; day++ {
		sys.Advance(22 * time.Hour)
		if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 2 * time.Hour}); err != nil {
			log.Fatal(err)
		}
	}

	problems, err := sys.Analyze(analysis.Config{StaleAfter: 3 * 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalysis found %d problem(s):\n", len(problems))
	for _, p := range problems {
		fmt.Printf("  %s\n", p)
	}
}
