// Distributed journal: Fremont's components talk over real sockets. A
// Journal Server runs in one goroutine (it could be another machine);
// Explorer Modules exploring the simulated campus record their findings
// through the TCP client; a presentation query reads them back. This is
// the deployment the paper describes — "all modules communicate via BSD
// sockets, [so] there are no restrictions about the physical location of
// individual modules" — plus its snapshot persistence across a restart.
//
//	go run ./examples/distributed-journal
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/jclient"
	"fremont/internal/jserver"
	"fremont/internal/netsim/campus"
	"fremont/internal/present"
)

func main() {
	dir, err := os.MkdirTemp("", "fremont-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "journal.snap")

	// Start the Journal Server (fremontd does exactly this).
	srv := jserver.New(nil)
	srv.SnapshotPath = snap
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal server listening on %s\n", srv.Addr())

	// The exploring site: a Fremont host on the simulated campus, storing
	// over TCP instead of in process.
	client, err := jclient.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	cfg := campus.DefaultConfig()
	cfg.Seed = 23
	sys := core.NewDepartmentSystem(cfg)
	sys.Sink = client
	sys.Advance(5 * time.Minute)

	for _, m := range []explorer.Module{explorer.EtherHostProbe{}, explorer.RIPwatch{}} {
		p := explorer.Params{Duration: 2 * time.Minute}
		rep, err := sys.RunModule(m, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}
	client.Close()

	// Stop the server; it writes its final snapshot.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server stopped; journal snapshot written")

	// Restart: a new server restores the journal, and a presentation
	// client reads the discoveries back over the wire.
	srv2 := jserver.New(nil)
	srv2.SnapshotPath = snap
	if err := srv2.LoadSnapshot(); err != nil {
		log.Fatal(err)
	}
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	fmt.Printf("restarted journal server on %s\n\n", srv2.Addr())

	reader, err := jclient.Dial(srv2.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	if err := present.Level2(os.Stdout, reader, sys.Campus.CSSubnet, sys.Now()); err != nil {
		log.Fatal(err)
	}
}
