// Quickstart: deploy Fremont on a simulated department wire, run two
// Explorer Modules, and look at what the Journal learned.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/netsim/campus"
	"fremont/internal/present"
)

func main() {
	// A department Ethernet with ~54 machines, a gateway, and a name
	// server — the paper's measured subnet.
	cfg := campus.DefaultConfig()
	cfg.Seed = 42
	sys := core.NewDepartmentSystem(cfg)

	// Let the simulated network settle: hosts begin chattering, the
	// gateway begins advertising RIP routes.
	sys.Advance(5 * time.Minute)

	// Passively watch ARP traffic for half an hour (requires privilege,
	// which NewDepartmentSystem grants).
	rep, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 30 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// Then actively sweep the wire: one UDP probe per address, reading the
	// Ethernet/IP pairs back out of our own ARP table.
	rep, err = sys.RunModule(explorer.EtherHostProbe{}, explorer.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// The Journal now holds interface records with both sources merged.
	fmt.Printf("\njournal: %d interfaces, %d gateways, %d subnets\n\n",
		sys.J.NumInterfaces(), sys.J.NumGateways(), sys.J.NumSubnets())

	// The paper's level-2 presentation: addresses, MACs, RIP sources,
	// gateway membership, verification ages.
	if err := present.Level2(os.Stdout, sys.Sink, sys.Campus.CSSubnet, sys.Now()); err != nil {
		log.Fatal(err)
	}
}
