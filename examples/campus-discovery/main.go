// Campus discovery: the paper's headline scenario. Fremont sits on one
// department wire of a 111-subnet campus it knows nothing about, and the
// Discovery Manager drives the Explorer Modules — RIP clues feed
// traceroute, DNS naming conventions expose gateways, cross-correlation
// merges the evidence — until the Journal holds a topology map.
//
//	go run ./examples/campus-discovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fremont/internal/core"
	"fremont/internal/netsim/campus"
)

func main() {
	cfg := campus.DefaultConfig()
	cfg.Seed = 7
	cfg.Chatter = false // this example is about structure, not churn
	cfg.Liveness = false
	sys := core.NewSystem(cfg)
	sys.Advance(5 * time.Minute)

	fmt.Printf("campus ground truth: %d live subnets, %d gateways\n\n",
		len(sys.Campus.Live), len(sys.Campus.Gateways))

	// One Discovery Manager batch runs every module that is due (on a
	// fresh deployment: all of them), directs each one with Journal clues,
	// and finishes with a correlation pass.
	mgr := sys.NewManager("")
	reports, err := sys.RunManagerBatch(mgr)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println(rep)
	}

	fmt.Printf("\njournal: %d interfaces, %d gateways, %d subnets\n\n",
		sys.J.NumInterfaces(), sys.J.NumGateways(), sys.J.NumSubnets())

	// Figure 2: the discovered structure, as an ASCII map (fremont-map
	// exports the same thing as Graphviz DOT or SunNet Manager records).
	topo, err := sys.Topology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered topology (%d subnets, %d gateways), first lines:\n",
		len(topo.Subnets), len(topo.Gateways))
	topo.WriteASCII(limitedWriter{limit: 30})
	_ = os.Stdout
}

// limitedWriter prints only the first N lines, to keep the demo readable.
type limitedWriter struct{ limit int }

var printed int

func (l limitedWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if printed >= l.limit {
			return len(p), nil
		}
		fmt.Print(string(b))
		if b == '\n' {
			printed++
		}
	}
	return len(p), nil
}
