// Command fremont-explore runs Explorer Modules against the simulated
// campus, recording discoveries either in an in-process Journal or — the
// deployment the paper describes — in a remote Journal Server over TCP
// (see fremontd).
//
// Usage:
//
//	fremont-explore -list
//	fremont-explore -module SeqPing [-seed 1993]
//	fremont-explore -module RIPwatch -journal localhost:4741 -duration 2m
//	fremont-explore -manager          # one Discovery Manager batch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fremont/internal/core"
	"fremont/internal/experiments"
	"fremont/internal/explorer"
	"fremont/internal/jclient"
	"fremont/internal/netsim/campus"
)

func main() {
	list := flag.Bool("list", false, "list the Explorer Modules (the paper's Table 3)")
	module := flag.String("module", "", "module to run (see -list)")
	managerRun := flag.Bool("manager", false, "run one Discovery Manager batch instead of a single module")
	journalAddr := flag.String("journal", "", "Journal Server address (empty = in-process journal)")
	seed := flag.Int64("seed", 1993, "simulation seed")
	duration := flag.Duration("duration", 0, "watch duration for passive modules")
	unprivileged := flag.Bool("unprivileged", false, "withhold system privileges (disables the NIT-based modules)")
	history := flag.String("history", "", "Discovery Manager startup/history file")
	verbose := flag.Bool("v", false, "log module progress")
	flag.Parse()

	if *list {
		experiments.Table3().Write(os.Stdout)
		fmt.Println("\nextensions (paper's Future Work):")
		for _, m := range explorer.Extensions() {
			info := m.Info()
			fmt.Printf("  %-10s %-10s %-22s %s\n", info.SourceProtocol, info.Name, info.Inputs, info.Outputs)
		}
		return
	}
	if *module == "" && !*managerRun {
		flag.Usage()
		os.Exit(2)
	}

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	sys := core.NewSystem(cfg)
	sys.Privileged = !*unprivileged
	if *verbose {
		sys.Log = func(format string, args ...any) { log.Printf(format, args...) }
	}
	if *journalAddr != "" {
		// A connection pool rather than a single connection: concurrent
		// module goroutines get parallel round trips, and pool checkout
		// waits are visible in the metrics snapshot.
		p, err := jclient.DialPool(*journalAddr, 4)
		if err != nil {
			log.Fatalf("fremont-explore: %v", err)
		}
		defer p.Close()
		if err := p.Do(func(c *jclient.Client) error { return c.Ping() }); err != nil {
			log.Fatalf("fremont-explore: journal server: %v", err)
		}
		// Observations ride the batched wire protocol: the buffered sink
		// flushes every jclient.DefaultAutoFlush stores (and before any
		// query), and the final partial batch is flushed before exit.
		buffered := p.Buffered(0)
		defer func() {
			if err := buffered.Flush(); err != nil {
				log.Printf("fremont-explore: final flush: %v", err)
			}
		}()
		sys.Sink = buffered
		fmt.Printf("recording to journal server at %s\n", *journalAddr)
	}
	sys.Advance(5 * time.Minute) // let the campus settle

	if *managerRun {
		mgr := sys.NewManager(*history)
		if *history != "" {
			if err := mgr.LoadHistory(); err != nil {
				log.Fatalf("fremont-explore: history: %v", err)
			}
		}
		reports, err := sys.RunManagerBatch(mgr)
		if err != nil {
			log.Fatalf("fremont-explore: manager: %v", err)
		}
		for _, rep := range reports {
			fmt.Println(rep)
		}
		return
	}

	m := explorer.ByName(*module)
	if m == nil {
		log.Fatalf("fremont-explore: unknown module %q (try -list)", *module)
	}
	params := explorer.Params{Duration: *duration}
	if m.Info().Name == "DNS" {
		params.Network = sys.Network()
		params.DNSServer = sys.Campus.DNSServerIP
	}
	rep, err := sys.RunModule(m, params)
	if err != nil {
		log.Fatalf("fremont-explore: %v", err)
	}
	fmt.Println(rep)
	for _, note := range rep.Notes {
		fmt.Printf("  note: %s\n", note)
	}
}
