// Command fremontd runs the Fremont Journal Server: it owns the in-memory
// Journal, serializes Store/Update requests from Explorer Modules, answers
// Get queries from presentation and analysis programs, and writes the
// Journal to disk periodically and at termination.
//
// With -wal-dir set, every mutating request is appended to a write-ahead
// log before it is applied, so a crash between snapshots loses nothing
// that was acknowledged (-wal-fsync=always) or at most the unsynced
// window (-wal-fsync=interval). On startup the server restores the last
// snapshot and replays the log tail; each snapshot compacts the log.
//
// Usage:
//
//	fremontd [-listen :4741] [-snapshot journal.snap] [-snapshot-interval 5m]
//	         [-wal-dir journal.wal] [-wal-fsync always|interval|never]
//	         [-wal-segment-size 16777216] [-metrics-addr :4742]
//	         [-tenant-quota N]
//
// With -shards N and -data-dir DIR, fremontd instead boots an in-process
// journal fabric: N full jserver shards, shard i listening on the -listen
// port + i with its snapshot and WAL under DIR/shard<i>/. Shards stay
// independently addressable, so the same topology also runs as one
// process per shard: start N fremontd processes with -shard-index i
// -shard-count N and each serves one stripe of the fabric's ID space
// (clients route with jclient.DialFabric either way).
//
// With -metrics-addr set, the server's metrics registry is exposed over
// HTTP: any path returns a human-readable text snapshot, a path ending in
// .json (or an Accept: application/json request) returns the JSON form.
// In fabric mode the document merges every shard's instruments under a
// shard<i>_ prefix. The same snapshot is available over the journal
// protocol itself via the Stats op (`fremont-query -server ADDR stats`).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fremont/internal/fabric/fabricd"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/obs"
	"fremont/internal/wal"
)

func main() {
	listen := flag.String("listen", ":4741", "TCP address to serve the Journal protocol on")
	snapshot := flag.String("snapshot", "", "path for periodic Journal snapshots (empty disables persistence)")
	interval := flag.Duration("snapshot-interval", 5*time.Minute, "how often to write snapshots")
	walDir := flag.String("wal-dir", "", "directory for the write-ahead log (empty disables the WAL)")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always, interval, or never")
	walSegSize := flag.Int64("wal-segment-size", wal.DefaultSegmentSize, "WAL segment rotation threshold in bytes")
	walGroupMax := flag.Int("wal-group-max", wal.DefaultGroupMax, "max records coalesced into one WAL commit group")
	walGroupWait := flag.Duration("wal-group-wait", 0, "how long a commit leader waits for followers to join the group (0 = commit immediately; try 100us-2ms under heavy concurrent writes)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for the metrics endpoint (empty disables it)")
	tenantQuota := flag.Int("tenant-quota", 0, "max records per tenant namespace (0 = unlimited)")
	shards := flag.Int("shards", 0, "boot an in-process fabric of N shards (0 = single server)")
	dataDir := flag.String("data-dir", "", "fabric data root: shard i persists under DIR/shard<i>/ (fabric mode)")
	shardIndex := flag.Int("shard-index", -1, "serve one fabric shard: this process allocates IDs of stripe i (requires -shard-count)")
	shardCount := flag.Int("shard-count", 0, "total shards in the fabric this process is one stripe of")
	flag.Parse()

	if *shards > 0 {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("fremontd: %v", err)
		}
		runFabric(*listen, *metricsAddr, fabricd.Options{
			Shards:           *shards,
			DataDir:          *dataDir,
			SyncPolicy:       policy,
			SegmentSize:      *walSegSize,
			GroupMax:         *walGroupMax,
			GroupWait:        *walGroupWait,
			SnapshotInterval: *interval,
			TenantQuota:      *tenantQuota,
		})
		return
	}
	if (*shardIndex >= 0) != (*shardCount > 0) {
		log.Fatalf("fremontd: -shard-index and -shard-count must be set together")
	}
	if *shardIndex >= *shardCount && *shardCount > 0 {
		log.Fatalf("fremontd: -shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount)
	}

	srv := jserver.New(nil)
	srv.SnapshotPath = *snapshot
	srv.SnapshotInterval = *interval
	srv.TenantQuota = *tenantQuota
	if *shardCount > 1 {
		// One stripe of a multi-process fabric: allocate only IDs
		// congruent to shardIndex+1 mod shardCount, so this server's
		// records interleave with its peers' without coordination.
		srv.Journal().SetIDStride(journal.ID(*shardIndex), journal.ID(*shardCount))
	}

	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("fremontd: %v", err)
		}
		l, err := wal.Open(wal.Options{
			Dir: *walDir, Policy: policy, SegmentSize: *walSegSize,
			GroupMax: *walGroupMax, GroupWait: *walGroupWait,
			Obs: srv.Obs(),
		})
		if err != nil {
			log.Fatalf("fremontd: open wal: %v", err)
		}
		srv.WAL = l
	}

	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, srv.Obs())
	}

	st, err := srv.Recover()
	if err != nil {
		log.Fatalf("fremontd: recover: %v", err)
	}
	if st.SnapshotLoaded {
		log.Printf("fremontd: restored snapshot at LSN %d: %d interfaces, %d gateways, %d subnets",
			st.SnapshotLSN, srv.Journal().NumInterfaces(), srv.Journal().NumGateways(), srv.Journal().NumSubnets())
	}
	if srv.WAL != nil {
		log.Printf("fremontd: wal replayed %d frames (%d ops, %d already in snapshot)",
			st.WALFrames, st.WALOps, st.WALSkipped)
		if st.Torn {
			log.Printf("fremontd: wal had a torn tail; %d unverifiable bytes discarded", st.DroppedBytes)
		}
	}

	if err := srv.Listen(*listen); err != nil {
		log.Fatalf("fremontd: listen: %v", err)
	}
	fmt.Printf("fremontd: journal server on %s\n", srv.Addr())

	waitSignal()
	log.Printf("fremontd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("fremontd: close: %v", err)
	}
}

// runFabric boots an in-process fabric: N shards on consecutive ports.
func runFabric(listen, metricsAddr string, opts fabricd.Options) {
	f, err := fabricd.Open(opts)
	if err != nil {
		log.Fatalf("fremontd: open fabric: %v", err)
	}
	if metricsAddr != "" {
		serveMetrics(metricsAddr, f.Obs())
	}
	stats, err := f.Recover()
	if err != nil {
		log.Fatalf("fremontd: recover fabric: %v", err)
	}
	for i, st := range stats {
		if st.SnapshotLoaded || st.WALFrames > 0 {
			log.Printf("fremontd: shard%d restored: snapshot LSN %d, %d wal frames", i, st.SnapshotLSN, st.WALFrames)
		}
	}
	if err := f.Listen(listen); err != nil {
		log.Fatalf("fremontd: listen fabric: %v", err)
	}
	fmt.Printf("fremontd: %d-shard journal fabric on %v\n", opts.Shards, f.Addrs())

	waitSignal()
	log.Printf("fremontd: shutting down fabric")
	if err := f.Close(); err != nil {
		log.Fatalf("fremontd: close: %v", err)
	}
}

func serveMetrics(addr string, reg *obs.Registry) {
	go func() {
		log.Printf("fremontd: metrics on http://%s/metrics", addr)
		if err := http.ListenAndServe(addr, obs.Handler(reg)); err != nil {
			log.Fatalf("fremontd: metrics listener: %v", err)
		}
	}()
}

func waitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
