// Command fremontd runs the Fremont Journal Server: it owns the in-memory
// Journal, serializes Store/Update requests from Explorer Modules, answers
// Get queries from presentation and analysis programs, and writes the
// Journal to disk periodically and at termination.
//
// Usage:
//
//	fremontd [-listen :4741] [-snapshot journal.snap] [-snapshot-interval 5m]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fremont/internal/jserver"
)

func main() {
	listen := flag.String("listen", ":4741", "TCP address to serve the Journal protocol on")
	snapshot := flag.String("snapshot", "", "path for periodic Journal snapshots (empty disables persistence)")
	interval := flag.Duration("snapshot-interval", 5*time.Minute, "how often to write snapshots")
	flag.Parse()

	srv := jserver.New(nil)
	srv.SnapshotPath = *snapshot
	srv.SnapshotInterval = *interval
	if err := srv.LoadSnapshot(); err != nil {
		log.Fatalf("fremontd: load snapshot: %v", err)
	}
	if n := srv.Journal().NumInterfaces(); n > 0 {
		log.Printf("fremontd: restored %d interfaces, %d gateways, %d subnets",
			n, srv.Journal().NumGateways(), srv.Journal().NumSubnets())
	}
	if err := srv.Listen(*listen); err != nil {
		log.Fatalf("fremontd: listen: %v", err)
	}
	fmt.Printf("fremontd: journal server on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("fremontd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("fremontd: close: %v", err)
	}
}
