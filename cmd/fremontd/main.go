// Command fremontd runs the Fremont Journal Server: it owns the in-memory
// Journal, serializes Store/Update requests from Explorer Modules, answers
// Get queries from presentation and analysis programs, and writes the
// Journal to disk periodically and at termination.
//
// With -wal-dir set, every mutating request is appended to a write-ahead
// log before it is applied, so a crash between snapshots loses nothing
// that was acknowledged (-wal-fsync=always) or at most the unsynced
// window (-wal-fsync=interval). On startup the server restores the last
// snapshot and replays the log tail; each snapshot compacts the log.
//
// Usage:
//
//	fremontd [-listen :4741] [-snapshot journal.snap] [-snapshot-interval 5m]
//	         [-wal-dir journal.wal] [-wal-fsync always|interval|never]
//	         [-wal-segment-size 16777216] [-metrics-addr :4742]
//
// With -metrics-addr set, the server's metrics registry is exposed over
// HTTP: any path returns a human-readable text snapshot, a path ending in
// .json (or an Accept: application/json request) returns the JSON form.
// The same snapshot is available over the journal protocol itself via the
// Stats op (`fremont-query -server ADDR stats`).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fremont/internal/jserver"
	"fremont/internal/obs"
	"fremont/internal/wal"
)

func main() {
	listen := flag.String("listen", ":4741", "TCP address to serve the Journal protocol on")
	snapshot := flag.String("snapshot", "", "path for periodic Journal snapshots (empty disables persistence)")
	interval := flag.Duration("snapshot-interval", 5*time.Minute, "how often to write snapshots")
	walDir := flag.String("wal-dir", "", "directory for the write-ahead log (empty disables the WAL)")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always, interval, or never")
	walSegSize := flag.Int64("wal-segment-size", wal.DefaultSegmentSize, "WAL segment rotation threshold in bytes")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for the metrics endpoint (empty disables it)")
	flag.Parse()

	srv := jserver.New(nil)
	srv.SnapshotPath = *snapshot
	srv.SnapshotInterval = *interval

	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("fremontd: %v", err)
		}
		l, err := wal.Open(wal.Options{
			Dir: *walDir, Policy: policy, SegmentSize: *walSegSize,
			Obs: srv.Obs(),
		})
		if err != nil {
			log.Fatalf("fremontd: open wal: %v", err)
		}
		srv.WAL = l
	}

	if *metricsAddr != "" {
		go func() {
			log.Printf("fremontd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, obs.Handler(srv.Obs())); err != nil {
				log.Fatalf("fremontd: metrics listener: %v", err)
			}
		}()
	}

	st, err := srv.Recover()
	if err != nil {
		log.Fatalf("fremontd: recover: %v", err)
	}
	if st.SnapshotLoaded {
		log.Printf("fremontd: restored snapshot at LSN %d: %d interfaces, %d gateways, %d subnets",
			st.SnapshotLSN, srv.Journal().NumInterfaces(), srv.Journal().NumGateways(), srv.Journal().NumSubnets())
	}
	if srv.WAL != nil {
		log.Printf("fremontd: wal replayed %d frames (%d ops, %d already in snapshot)",
			st.WALFrames, st.WALOps, st.WALSkipped)
		if st.Torn {
			log.Printf("fremontd: wal had a torn tail; %d unverifiable bytes discarded", st.DroppedBytes)
		}
	}

	if err := srv.Listen(*listen); err != nil {
		log.Fatalf("fremontd: listen: %v", err)
	}
	fmt.Printf("fremontd: journal server on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("fremontd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("fremontd: close: %v", err)
	}
}
