// Command fremont-sim regenerates the paper's evaluation: every table and
// figure, run against the simulated University-of-Colorado-like campus.
//
// Usage:
//
//	fremont-sim -all                 # every table and figure
//	fremont-sim -table 5 -seed 1993  # one table
//	fremont-sim -figure 2 -format dot
//	fremont-sim -selfhost -loss 0.05 # self-hosted Fremont over simulated TCP
//	fremont-sim -topology grid10k -sim 1m -cpuprofile cpu.pprof
//	                                 # 100k-host sharded scale run, profiled
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fremont/internal/emulytics"
	"fremont/internal/experiments"
	"fremont/internal/netsim/grid"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (2)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	seed := flag.Int64("seed", 1993, "simulation seed")
	format := flag.String("format", "ascii", "figure 2 format: ascii, dot, or snm")
	selfhost := flag.Bool("selfhost", false, "run the self-hosted scenario: real jserver+jclient over simulated TCP")
	loss := flag.Float64("loss", 0, "selfhost: random frame-loss probability (e.g. 0.05)")
	explorers := flag.Int("explorers", 2, "selfhost: explorer host count")
	stores := flag.Int("stores", 8, "selfhost: observations per explorer")
	duration := flag.Duration("duration", 2*time.Minute, "selfhost: virtual-time horizon")
	transcript := flag.String("transcript", "", "selfhost: write the scenario transcript to this file")
	topology := flag.String("topology", "", "run a sharded scale simulation: grid (mid-size) or grid10k (10k subnets, 100k hosts)")
	simFor := flag.Duration("sim", time.Minute, "topology: virtual time to simulate")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	if *topology != "" {
		runTopology(*topology, *seed, *simFor)
		return
	}

	if *selfhost {
		runSelfhost(*seed, *loss, *explorers, *stores, *duration, *transcript)
		return
	}

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := func(n int) {
		switch n {
		case 1:
			experiments.Table1().Write(os.Stdout)
		case 2:
			experiments.Table2().Table().Write(os.Stdout)
		case 3:
			experiments.Table3().Write(os.Stdout)
		case 4:
			r, err := experiments.Table4(*seed)
			check(err)
			r.Table().Write(os.Stdout)
		case 5:
			r, err := experiments.Table5(*seed)
			check(err)
			r.Table().Write(os.Stdout)
		case 6:
			r, err := experiments.Table6(*seed)
			check(err)
			r.Table().Write(os.Stdout)
		case 7:
			r, err := experiments.Table7(*seed)
			check(err)
			r.Table().Write(os.Stdout)
		case 8:
			r, err := experiments.Table8(*seed)
			check(err)
			r.Table().Write(os.Stdout)
		default:
			log.Fatalf("fremont-sim: no table %d", n)
		}
		fmt.Println()
	}

	if *all {
		for n := 1; n <= 8; n++ {
			run(n)
		}
		printFigure2(*seed, *format)
		return
	}
	if *table != 0 {
		run(*table)
	}
	if *figure != 0 {
		if *figure != 2 {
			log.Fatalf("fremont-sim: no figure %d", *figure)
		}
		printFigure2(*seed, *format)
	}
}

func printFigure2(seed int64, format string) {
	r, err := experiments.Figure2(seed)
	check(err)
	fmt.Println("Figure 2: Discovered subnet topology")
	switch format {
	case "dot":
		fmt.Print(r.DOT)
	case "snm":
		fmt.Print(r.SNM)
	default:
		fmt.Print(r.ASCII)
	}
}

// runSelfhost executes the emulytics scenario and prints a summary whose
// first line ("digest=...") is the determinism witness CI compares across
// reruns.
func runSelfhost(seed int64, loss float64, explorers, stores int, duration time.Duration, transcriptPath string) {
	cfg := emulytics.Config{
		Seed: seed, Loss: loss,
		Explorers: explorers, StoresPerExplorer: stores,
		Duration: duration,
	}
	if transcriptPath != "" {
		f, err := os.Create(transcriptPath)
		check(err)
		defer f.Close()
		cfg.Transcript = f
	}
	res, err := emulytics.Run(cfg)
	check(err)
	fmt.Printf("digest=%s\n", res.Digest)
	fmt.Printf("records=%d frames=%d retransmits=%d requests=%d virtual=%s\n",
		res.Records, res.Frames, res.Retransmits, res.Requests, res.VirtualElapsed)
}

// runTopology builds a sharded scale topology, simulates it for d of
// virtual time in parallel, and prints a summary whose first line
// ("digest=...") is the determinism witness — the same seed must print
// the same digest at any GOMAXPROCS.
func runTopology(name string, seed int64, d time.Duration) {
	var cfg grid.Config
	switch name {
	case "grid":
		cfg = grid.DefaultConfig()
	case "grid10k":
		cfg = grid.InternetScale()
	default:
		log.Fatalf("fremont-sim: unknown topology %q (want grid or grid10k)", name)
	}
	cfg.Seed = seed

	start := time.Now()
	g := grid.Build(cfg)
	buildWall := time.Since(start)
	defer g.Close()

	start = time.Now()
	g.Run(d)
	simWall := time.Since(start)

	st := g.Cluster.Stats()
	fmt.Printf("digest=%s\n", g.Digest())
	fmt.Printf("topology=%s shards=%d subnets=%d hosts=%d nodes=%d\n",
		name, cfg.Shards, len(g.Subnets), g.Hosts, g.Nodes())
	fmt.Printf("virtual=%s wall=%s build=%s sim-sec/wall-sec=%.0f\n",
		d, simWall.Round(time.Millisecond), buildWall.Round(time.Millisecond),
		d.Seconds()/simWall.Seconds())
	fmt.Printf("frames=%d cross-frames=%d windows=%d idle-skips=%d\n",
		g.TotalFrames(), st.CrossFrames, st.Windows, st.IdleSkips)
}

// writeMemProfile snapshots the heap (after a final GC) so scale runs can
// be sized without code edits.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	runtime.GC()
	check(pprof.WriteHeapProfile(f))
}

func check(err error) {
	if err != nil {
		log.Fatalf("fremont-sim: %v", err)
	}
}
