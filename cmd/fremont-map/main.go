// Command fremont-map exports the network structure recorded in the
// Journal — the paper's Figure 2 — in SunNet-Manager-style records,
// Graphviz DOT, or as an ASCII tree.
//
// Usage:
//
//	fremont-map -journal localhost:4741 -format dot > campus.dot
package main

import (
	"flag"
	"log"
	"os"

	"fremont/internal/jclient"
	"fremont/internal/present"
)

func main() {
	journalAddr := flag.String("journal", "localhost:4741", "Journal Server address")
	format := flag.String("format", "ascii", "output format: ascii, dot, or snm")
	page := flag.Int("page", 0, "records fetched per round trip (0 = server default)")
	flag.Parse()

	c, err := jclient.Dial(*journalAddr)
	if err != nil {
		log.Fatalf("fremont-map: %v", err)
	}
	defer c.Close()
	c.PageSize = *page

	topo, err := present.ExtractTopology(c)
	if err != nil {
		log.Fatalf("fremont-map: %v", err)
	}
	switch *format {
	case "dot":
		topo.WriteDOT(os.Stdout)
	case "snm":
		topo.WriteSNM(os.Stdout)
	case "ascii":
		topo.WriteASCII(os.Stdout)
	default:
		log.Fatalf("fremont-map: unknown format %q", *format)
	}
}
