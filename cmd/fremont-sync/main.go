// Command fremont-sync replicates Journal contents between Journal
// Servers — the paper's multi-site deployment: "the system can be
// replicated at multiple sites, exploring different networks, and sharing
// information among the replicated components."
//
// Usage:
//
//	fremont-sync -from siteA:4741 -to siteB:4741 [-since 24h] [-both]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/replicate"
)

func main() {
	from := flag.String("from", "", "source Journal Server address")
	to := flag.String("to", "", "destination Journal Server address")
	since := flag.Duration("since", 0, "only records modified within this window (0 = everything)")
	both := flag.Bool("both", false, "bidirectional exchange")
	flag.Parse()

	if *from == "" || *to == "" {
		flag.Usage()
		log.Fatal("fremont-sync: -from and -to are required")
	}
	srcPool, err := jclient.DialPool(*from, 2)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	defer srcPool.Close()
	dstPool, err := jclient.DialPool(*to, 2)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	defer dstPool.Close()
	// Buffered sinks replay observations over the batched wire protocol:
	// one round trip per batch instead of one per record. Queries flush
	// first, so the bidirectional exchange stays coherent. Pool-backed
	// sinks drop a connection that fails mid-pull and re-dial, so a
	// transient network error does not poison the stream.
	src := srcPool.Buffered(0)
	dst := dstPool.Buffered(0)

	var cutoff time.Time
	if *since > 0 {
		cutoff = time.Now().Add(-*since)
	}
	if *both {
		ab, ba, err := replicate.Exchange(src, dst, cutoff)
		if err != nil {
			log.Fatalf("fremont-sync: %v", err)
		}
		fmt.Printf("%s -> %s: %s\n", *from, *to, ab)
		fmt.Printf("%s -> %s: %s\n", *to, *from, ba)
		return
	}
	rep, err := replicate.Pull(dst, src, cutoff)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	fmt.Println(rep)
}
