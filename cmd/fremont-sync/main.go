// Command fremont-sync replicates Journal contents between Journal
// Servers — the paper's multi-site deployment: "the system can be
// replicated at multiple sites, exploring different networks, and sharing
// information among the replicated components."
//
// Usage:
//
//	fremont-sync -from siteA:4741 -to siteB:4741 [-cursor-file sync.cur] [-both]
//
// With -cursor-file, each run persists the replication cursors it reached
// and the next run resumes from them, transferring only what the source
// mutated in between — a re-run against an unchanged source transfers
// nothing. Without it, every run replays the full journal (still
// convergent: the destination's merge logic is idempotent).
//
// A comma-separated -from ("host:4741,host:4742,host:4743") pulls from a
// journal fabric: every shard is replicated, with cursors kept per
// (shard, kind) in the same cursor file so re-pull-transfers-zero holds
// fabric-wide. A shard that is down is skipped (its cursor stays put and
// the next run closes the gap); the run fails only when no shard
// answers. -both requires a single-server -from.
package main

import (
	"flag"
	"fmt"
	"log"

	"strings"

	"fremont/internal/fabric"
	"fremont/internal/jclient"
	"fremont/internal/replicate"
)

func main() {
	from := flag.String("from", "", "source Journal Server address")
	to := flag.String("to", "", "destination Journal Server address")
	cursorFile := flag.String("cursor-file", "", "persist replication cursors here and resume from them (empty = full replay every run)")
	both := flag.Bool("both", false, "bidirectional exchange")
	flag.Parse()

	if *from == "" || *to == "" {
		flag.Usage()
		log.Fatal("fremont-sync: -from and -to are required")
	}
	var cursors replicate.CursorFile
	if *cursorFile != "" {
		var err error
		if cursors, err = replicate.LoadCursors(*cursorFile); err != nil {
			log.Fatalf("fremont-sync: %v", err)
		}
	}
	if shardAddrs := strings.Split(*from, ","); len(shardAddrs) > 1 {
		if *both {
			log.Fatal("fremont-sync: -both needs a single-server -from")
		}
		syncFabric(shardAddrs, *to, *cursorFile, cursors)
		return
	}
	srcPool, err := jclient.DialPool(*from, 2)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	defer srcPool.Close()
	dstPool, err := jclient.DialPool(*to, 2)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	defer dstPool.Close()
	// Buffered sinks replay observations over the batched wire protocol:
	// one round trip per batch instead of one per record. Queries flush
	// first, so the bidirectional exchange stays coherent. Pool-backed
	// sinks drop a connection that fails mid-pull and re-dial, so a
	// transient network error does not poison the stream.
	src := srcPool.Buffered(0)
	dst := dstPool.Buffered(0)

	if *both {
		ab, ba, nextFwd, nextRev, err := replicate.Exchange(src, dst, cursors.Forward, cursors.Reverse)
		// Even a failed exchange advanced the cursors over whatever was
		// replayed; persist them so a retry resumes rather than restarts.
		cursors.Forward, cursors.Reverse = nextFwd, nextRev
		saveCursors(*cursorFile, cursors)
		if err != nil {
			log.Fatalf("fremont-sync: %v", err)
		}
		fmt.Printf("%s -> %s: %s\n", *from, *to, ab)
		fmt.Printf("%s -> %s: %s\n", *to, *from, ba)
		return
	}
	rep, next, err := replicate.Pull(dst, src, cursors.Forward)
	cursors.Forward = next
	saveCursors(*cursorFile, cursors)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	fmt.Println(rep)
}

// syncFabric pulls every shard of a fabric source into dst, one cursor
// per (shard, kind). Down shards are skipped and reported; their cursors
// do not move.
func syncFabric(shardAddrs []string, to, cursorPath string, cursors replicate.CursorFile) {
	dstPool, err := jclient.DialPool(to, 2)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	defer dstPool.Close()
	dst := dstPool.Buffered(0)

	var srcs []replicate.ShardSource
	var pools []*jclient.Pool
	for i, addr := range shardAddrs {
		// Lazy pools: a down shard costs nothing until its pull, which
		// then fails and is skipped rather than aborting the run.
		p := jclient.NewPool(strings.TrimSpace(addr), 2)
		pools = append(pools, p)
		srcs = append(srcs, replicate.ShardSource{ID: fabric.ShardID(i), Src: p.Buffered(0)})
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	rep, next, err := replicate.PullFabric(dst, srcs, cursors.ForwardShards)
	cursors.ForwardShards = next
	saveCursors(cursorPath, cursors)
	if err != nil {
		log.Fatalf("fremont-sync: %v", err)
	}
	fmt.Println(rep)
}

func saveCursors(path string, cf replicate.CursorFile) {
	if path == "" {
		return
	}
	if err := replicate.SaveCursors(path, cf); err != nil {
		log.Printf("fremont-sync: saving cursors: %v", err)
	}
}
