// Command fremont-analyze runs Fremont's analysis programs against a
// Journal Server: subnet mask conflicts, MAC/IP address conflicts
// (duplicate assignments, hardware changes, proxy ARP), stale addresses,
// and promiscuous RIP hosts — the paper's Table 8 problem classes.
//
// Usage:
//
//	fremont-analyze -journal localhost:4741 [-stale-after 168h]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/jclient"
)

func main() {
	journalAddr := flag.String("journal", "localhost:4741", "Journal Server address")
	staleAfter := flag.Duration("stale-after", 7*24*time.Hour, "flag addresses unverified for this long")
	page := flag.Int("page", 0, "records fetched per round trip (0 = server default)")
	flag.Parse()

	c, err := jclient.Dial(*journalAddr)
	if err != nil {
		log.Fatalf("fremont-analyze: %v", err)
	}
	defer c.Close()
	c.PageSize = *page

	problems, err := analysis.Run(c, analysis.Config{Now: time.Now(), StaleAfter: *staleAfter})
	if err != nil {
		log.Fatalf("fremont-analyze: %v", err)
	}
	if len(problems) == 0 {
		fmt.Println("no problems found")
		return
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	fmt.Printf("%d problem(s) found\n", len(problems))
}
