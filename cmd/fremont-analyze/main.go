// Command fremont-analyze runs Fremont's analysis programs against a
// Journal Server: subnet mask conflicts, MAC/IP address conflicts
// (duplicate assignments, hardware changes, proxy ARP), stale addresses,
// and promiscuous RIP hosts — the paper's Table 8 problem classes.
//
// Usage:
//
//	fremont-analyze -journal localhost:4741 [-stale-after 168h]
//	fremont-analyze -journal localhost:4741 -follow [-correlate]
//
// With -follow the program subscribes to the server's change stream and
// alerts the moment a pushed record completes a problem's evidence — no
// polling interval, no re-running the batch pass. -correlate
// additionally runs the streaming cross-correlation pass, writing
// inferred gateways back to the journal as their evidence arrives.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/correlate"
	"fremont/internal/jclient"
	"fremont/internal/journal"
)

func main() {
	journalAddr := flag.String("journal", "localhost:4741", "Journal Server address")
	staleAfter := flag.Duration("stale-after", 7*24*time.Hour, "flag addresses unverified for this long")
	page := flag.Int("page", 0, "records fetched per round trip (0 = server default)")
	follow := flag.Bool("follow", false, "subscribe to the change stream and alert as problems appear")
	doCorrelate := flag.Bool("correlate", false, "with -follow: also stream the cross-correlation pass, storing inferred gateways")
	flag.Parse()

	c, err := jclient.Dial(*journalAddr)
	if err != nil {
		log.Fatalf("fremont-analyze: %v", err)
	}
	defer c.Close()
	c.PageSize = *page

	if *follow {
		if err := followLoop(c, *staleAfter, *doCorrelate); err != nil {
			log.Fatalf("fremont-analyze: %v", err)
		}
		return
	}

	problems, err := analysis.Run(c, analysis.Config{Now: time.Now(), StaleAfter: *staleAfter})
	if err != nil {
		log.Fatalf("fremont-analyze: %v", err)
	}
	if len(problems) == 0 {
		fmt.Println("no problems found")
		return
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	fmt.Printf("%d problem(s) found\n", len(problems))
}

// followLoop tails the journal's change stream: the subscription first
// replays existing records (surfacing the problems a batch run would
// find today), then delivers each commit as it lands, and the monitor
// alerts within one push of the completing evidence.
func followLoop(c *jclient.Client, staleAfter time.Duration, doCorrelate bool) error {
	sub, err := c.Subscribe(jclient.SubscribeOptions{})
	if err != nil {
		return err
	}
	defer sub.Close()

	mon := analysis.NewMonitor(analysis.Config{Now: time.Now(), StaleAfter: staleAfter})
	var str *correlate.Streamer
	if doCorrelate {
		str = correlate.NewStreamer(c, time.Now())
	}
	for ch := range sub.Events() {
		if ch.Resync {
			fmt.Printf("# stream resynced from cursor %d (fell behind)\n", ch.Seq)
			continue
		}
		now := time.Now()
		mon.SetNow(now)
		var problems []analysis.Problem
		switch ch.Kind {
		case journal.KindInterface:
			problems = mon.ApplyInterface(ch.Iface)
		case journal.KindSubnet:
			problems = mon.ApplySubnet(ch.Subnet)
		}
		if str != nil {
			str.SetNow(now)
			var serr error
			switch ch.Kind {
			case journal.KindInterface:
				serr = str.ApplyInterface(ch.Iface)
			case journal.KindGateway:
				serr = str.ApplyGateway(ch.Gateway)
			case journal.KindSubnet:
				serr = str.ApplySubnet(ch.Subnet)
			}
			if serr != nil {
				return serr
			}
		}
		for _, p := range problems {
			fmt.Printf("seq=%d %s\n", ch.Seq, p)
		}
	}
	return sub.Err()
}
