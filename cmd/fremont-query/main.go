// Command fremont-query is the interface browser: it interrogates a
// Journal Server and presents interface data at the paper's three levels
// of detail, or dumps the whole Journal.
//
// Usage:
//
//	fremont-query -journal localhost:4741 -dump
//	fremont-query -journal localhost:4741 -level 1 -network 128.138.0.0/16
//	fremont-query -journal localhost:4741 -level 2 -subnet 128.138.238.0/24
//	fremont-query -journal localhost:4741 -level 3 -ip 128.138.238.5
//	fremont-query -journal localhost:4741 stats
//	fremont-query -journal localhost:4741 changes [-after N] [-kind interface] [-follow]
//
// The stats subcommand fetches the server's metrics snapshot over the
// journal protocol (per-op request counts and latencies, WAL activity,
// recovery gauges, recent spans) and prints it in the same text format as
// the fremontd -metrics-addr endpoint.
//
// The changes subcommand lists records modified after a mod-seq cursor,
// oldest change first. With -follow it subscribes to the server's push
// stream instead and tails new commits as they land, printing each one
// with the cursor to resume from; on connection loss it reconnects and
// resumes from that cursor automatically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
	"fremont/internal/present"
)

// conn is the query surface both backends provide: a single Client, or
// a jclient.Fabric when -journal names several shard addresses.
type conn interface {
	journal.Sink
	journal.Changer
	ServerStats() (*obs.Snapshot, error)
}

func main() {
	journalAddr := flag.String("journal", "localhost:4741", "Journal Server address, or comma-separated fabric shard addresses")
	namespace := flag.String("namespace", "", "tenant namespace to query (empty = the default journal)")
	dump := flag.Bool("dump", false, "dump every record")
	level := flag.Int("level", 0, "presentation level (1, 2, or 3)")
	network := flag.String("network", "", "network for level 1 (e.g. 128.138.0.0/16)")
	subnet := flag.String("subnet", "", "subnet for level 2 (e.g. 128.138.238.0/24)")
	ipStr := flag.String("ip", "", "interface address for level 3")
	page := flag.Int("page", 0, "records fetched per round trip (0 = server default)")
	flag.Parse()

	var c conn
	var singleAddr string // set when -journal is one server (enables -follow)
	if addrs := strings.Split(*journalAddr, ","); len(addrs) > 1 {
		f, err := jclient.DialFabric(addrs, 2)
		if err != nil {
			log.Fatalf("fremont-query: %v", err)
		}
		defer f.Close()
		f.Use(*namespace)
		f.PageSize = *page
		c = f
	} else {
		cl, err := jclient.Dial(*journalAddr)
		if err != nil {
			log.Fatalf("fremont-query: %v", err)
		}
		defer cl.Close()
		if *namespace != "" {
			if err := cl.Use(*namespace); err != nil {
				log.Fatalf("fremont-query: %v", err)
			}
		}
		cl.PageSize = *page
		c = cl
		singleAddr = *journalAddr
	}

	now := time.Now()
	var err error
	switch {
	case flag.Arg(0) == "stats":
		var snap *obs.Snapshot
		if snap, err = c.ServerStats(); err == nil {
			err = snap.WriteText(os.Stdout)
		}
	case flag.Arg(0) == "changes":
		err = runChanges(c, singleAddr, *namespace, flag.Args()[1:])
	case *dump:
		err = present.Dump(os.Stdout, c)
	case *level == 1:
		var sn pkt.Subnet
		if sn, err = pkt.ParseSubnet(*network); err == nil {
			err = present.Level1(os.Stdout, c, sn, now)
		}
	case *level == 2:
		var sn pkt.Subnet
		if sn, err = pkt.ParseSubnet(*subnet); err == nil {
			err = present.Level2(os.Stdout, c, sn, now)
		}
	case *level == 3:
		var ip pkt.IP
		if ip, err = pkt.ParseIP(*ipStr); err == nil {
			err = present.Level3(os.Stdout, c, ip)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("fremont-query: %v", err)
	}
	if f, ok := c.(*jclient.Fabric); ok {
		if down := f.Unavailable(); len(down) > 0 {
			log.Fatalf("fremont-query: results are partial; shards unavailable: %s", strings.Join(down, ", "))
		}
	}
}

// runChanges implements the changes subcommand: a one-shot listing of
// records past a cursor, or (-follow) a live tail of the push stream.
// Against a fabric, the one-shot cursor is a composite handle minted by
// this process (resume within the same run only) and -follow fans in
// every shard's push stream.
func runChanges(c conn, singleAddr, namespace string, args []string) error {
	fs := flag.NewFlagSet("changes", flag.ExitOnError)
	after := fs.Uint64("after", 0, "list changes with mod-seq greater than this cursor")
	kindName := fs.String("kind", "", "restrict to one record kind: interface, gateway, or subnet")
	follow := fs.Bool("follow", false, "subscribe and tail new commits instead of listing once")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds, err := kindMask(*kindName)
	if err != nil {
		return err
	}
	if *follow {
		if namespace != "" {
			return fmt.Errorf("changes -follow streams the default journal only (tenant namespaces have no push hub)")
		}
		if f, ok := c.(*jclient.Fabric); ok {
			return tailFabricChanges(f, kinds, *after)
		}
		cl, ok := c.(*jclient.Client)
		if !ok || singleAddr == "" {
			return fmt.Errorf("changes -follow needs a single -journal server or a fabric")
		}
		return tailChanges(cl, kinds, *after)
	}
	return listChanges(c, kinds, *after)
}

func kindMask(name string) (byte, error) {
	switch name {
	case "":
		return jwire.SubAllKinds, nil
	case "interface":
		return jwire.SubKindInterface, nil
	case "gateway":
		return jwire.SubKindGateway, nil
	case "subnet":
		return jwire.SubKindSubnet, nil
	}
	return 0, fmt.Errorf("unknown record kind %q (want interface, gateway, or subnet)", name)
}

// recordLine renders one modified record. Mod-seqs only travel on push
// frames (record wire encodings never carry them), so the caller adds a
// seq prefix when it has one.
func recordLine(kind journal.RecordKind, iface *journal.InterfaceRec, gw *journal.GatewayRec, sn *journal.SubnetRec) string {
	switch kind {
	case journal.KindInterface:
		name := iface.Name
		if name == "" {
			name = "-"
		}
		return fmt.Sprintf("interface %-15s mac=%s name=%s", iface.IP, iface.MAC, name)
	case journal.KindGateway:
		return fmt.Sprintf("gateway   ifaces=%d subnets=%v", len(gw.Ifaces), gw.Subnets)
	case journal.KindSubnet:
		return fmt.Sprintf("subnet    %s", sn.Subnet)
	}
	return fmt.Sprintf("unknown-kind=%d", kind)
}

// listChanges drains the polling cursors once, printing each changed
// record grouped by kind, and reports the cursor to resume from. A
// commit landing mid-listing may be missed — that race is inherent to a
// one-shot read; -follow is the gap-free surface.
func listChanges(c journal.Changer, kinds byte, after uint64) error {
	total, resume := 0, after
	drain := func(page func(cur uint64) ([]string, uint64, bool, error)) error {
		cur := after
		for {
			lines, next, more, err := page(cur)
			if err != nil {
				return err
			}
			for _, l := range lines {
				fmt.Println(l)
			}
			total += len(lines)
			if next > resume {
				resume = next
			}
			if cur = next; !more {
				return nil
			}
		}
	}
	if kinds&jwire.SubKindInterface != 0 {
		err := drain(func(cur uint64) ([]string, uint64, bool, error) {
			recs, next, more, err := c.InterfaceChanges(cur, 0)
			var lines []string
			for _, rec := range recs {
				lines = append(lines, recordLine(journal.KindInterface, rec, nil, nil))
			}
			return lines, next, more, err
		})
		if err != nil {
			return err
		}
	}
	if kinds&jwire.SubKindGateway != 0 {
		err := drain(func(cur uint64) ([]string, uint64, bool, error) {
			recs, next, more, err := c.GatewayChanges(cur, 0)
			var lines []string
			for _, rec := range recs {
				lines = append(lines, recordLine(journal.KindGateway, nil, rec, nil))
			}
			return lines, next, more, err
		})
		if err != nil {
			return err
		}
	}
	if kinds&jwire.SubKindSubnet != 0 {
		err := drain(func(cur uint64) ([]string, uint64, bool, error) {
			recs, next, more, err := c.SubnetChanges(cur, 0)
			var lines []string
			for _, rec := range recs {
				lines = append(lines, recordLine(journal.KindSubnet, nil, nil, rec))
			}
			return lines, next, more, err
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d change(s) after cursor %d; resume with -after %d or -follow\n", total, after, resume)
	return nil
}

// tailFabricChanges fans in every shard's push stream and prints each
// event with its shard and shard-local cursor.
func tailFabricChanges(f *jclient.Fabric, kinds byte, after uint64) error {
	// A scalar -after can only mean "this seq on every shard"; 0 (from
	// the start) and a live tail are the useful cases.
	afterMap := map[string]uint64{}
	for _, id := range f.ShardIDs() {
		afterMap[id] = after
	}
	sub, err := f.Subscribe(jclient.FabricSubscribeOptions{Kinds: kinds, After: afterMap})
	if err != nil {
		return err
	}
	defer sub.Close()
	for ev := range sub.Events() {
		if ev.Resync {
			fmt.Printf("# %s: stream resynced from cursor %d (fell behind)\n", ev.Shard, ev.Seq)
			continue
		}
		fmt.Printf("%s seq=%-6d %s\n", ev.Shard, ev.Seq, recordLine(ev.Kind, ev.Iface, ev.Gateway, ev.Subnet))
	}
	return sub.Err()
}

// tailChanges subscribes and prints pushes until interrupted.
func tailChanges(c *jclient.Client, kinds byte, after uint64) error {
	sub, err := c.Subscribe(jclient.SubscribeOptions{Kinds: kinds, After: after})
	if err != nil {
		return err
	}
	defer sub.Close()
	for ch := range sub.Events() {
		if ch.Resync {
			fmt.Printf("# stream resynced from cursor %d (fell behind)\n", ch.Seq)
			continue
		}
		fmt.Printf("seq=%-6d %s\n", ch.Seq, recordLine(ch.Kind, ch.Iface, ch.Gateway, ch.Subnet))
	}
	return sub.Err()
}
