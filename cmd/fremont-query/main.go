// Command fremont-query is the interface browser: it interrogates a
// Journal Server and presents interface data at the paper's three levels
// of detail, or dumps the whole Journal.
//
// Usage:
//
//	fremont-query -journal localhost:4741 -dump
//	fremont-query -journal localhost:4741 -level 1 -network 128.138.0.0/16
//	fremont-query -journal localhost:4741 -level 2 -subnet 128.138.238.0/24
//	fremont-query -journal localhost:4741 -level 3 -ip 128.138.238.5
//	fremont-query -journal localhost:4741 stats
//
// The stats subcommand fetches the server's metrics snapshot over the
// journal protocol (per-op request counts and latencies, WAL activity,
// recovery gauges, recent spans) and prints it in the same text format as
// the fremontd -metrics-addr endpoint.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
	"fremont/internal/present"
)

func main() {
	journalAddr := flag.String("journal", "localhost:4741", "Journal Server address")
	dump := flag.Bool("dump", false, "dump every record")
	level := flag.Int("level", 0, "presentation level (1, 2, or 3)")
	network := flag.String("network", "", "network for level 1 (e.g. 128.138.0.0/16)")
	subnet := flag.String("subnet", "", "subnet for level 2 (e.g. 128.138.238.0/24)")
	ipStr := flag.String("ip", "", "interface address for level 3")
	page := flag.Int("page", 0, "records fetched per round trip (0 = server default)")
	flag.Parse()

	c, err := jclient.Dial(*journalAddr)
	if err != nil {
		log.Fatalf("fremont-query: %v", err)
	}
	defer c.Close()
	c.PageSize = *page

	now := time.Now()
	switch {
	case flag.Arg(0) == "stats":
		var snap *obs.Snapshot
		if snap, err = c.ServerStats(); err == nil {
			err = snap.WriteText(os.Stdout)
		}
	case *dump:
		err = present.Dump(os.Stdout, c)
	case *level == 1:
		var sn pkt.Subnet
		if sn, err = pkt.ParseSubnet(*network); err == nil {
			err = present.Level1(os.Stdout, c, sn, now)
		}
	case *level == 2:
		var sn pkt.Subnet
		if sn, err = pkt.ParseSubnet(*subnet); err == nil {
			err = present.Level2(os.Stdout, c, sn, now)
		}
	case *level == 3:
		var ip pkt.IP
		if ip, err = pkt.ParseIP(*ipStr); err == nil {
			err = present.Level3(os.Stdout, c, ip)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("fremont-query: %v", err)
	}
}
