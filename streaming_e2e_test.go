// End-to-end change streaming: a subscriber attached over real TCP sees
// every commit the moment it lands, the streaming analysis monitor and
// correlator react within one push (no polling call anywhere), and a
// server restart mid-stream resumes from the saved cursor with zero
// duplicate and zero missing mod-seqs.
package fremont_test

import (
	"reflect"
	"testing"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/correlate"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/netsim/pkt"
)

func e2eMAC(b byte) pkt.MAC { return pkt.MAC{0x08, 0x00, 0x20, 0, 0, b} }

// nextChange reads one pushed change with a deadline, failing the test
// if the stream stalls.
func nextChange(t *testing.T, sub *jclient.Subscription) jclient.Change {
	t.Helper()
	select {
	case ch, ok := <-sub.Events():
		if !ok {
			t.Fatalf("subscription closed early: %v", sub.Err())
		}
		return ch
	case <-time.After(10 * time.Second):
		t.Fatal("no push within 10s")
	}
	panic("unreachable")
}

func TestStreamingEndToEnd(t *testing.T) {
	now := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	j := journal.New()
	srv := jserver.New(j)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// One client writes observations; a second carries the streaming
	// correlator's inferred gateways back. Both cross real TCP.
	store, err := jclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sub, err := jclient.Subscribe(addr, jclient.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	mon := analysis.NewMonitor(analysis.Config{Now: now})
	str := correlate.NewStreamer(store, now)

	// Phase 1: the evidence, committed while the subscriber listens.
	sn1, _ := pkt.ParseSubnet("10.1.0.0/24")
	sn2, _ := pkt.ParseSubnet("10.2.0.0/24")
	if _, err := store.StoreSubnet(journal.SubnetObs{Subnet: sn1, Source: journal.SrcRIP, At: now}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.StoreSubnet(journal.SubnetObs{Subnet: sn2, Source: journal.SrcRIP, At: now}); err != nil {
		t.Fatal(err)
	}
	// The same MAC on both subnets: gateway evidence for the correlator.
	for _, ip := range []pkt.IP{pkt.IPv4(10, 1, 0, 1), pkt.IPv4(10, 2, 0, 1)} {
		if _, _, err := store.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: e2eMAC(1),
			Source: journal.SrcARP, At: now}); err != nil {
			t.Fatal(err)
		}
	}
	// Two MACs claiming one address with overlapping verification
	// windows: a duplicate-IP conflict for the monitor. The first
	// claimant is re-verified after the second appears, so both were
	// provably alive with the address at once.
	dupIP := pkt.IPv4(10, 1, 0, 50)
	dupStores := []struct {
		mac byte
		at  time.Time
	}{
		{50, now.Add(-2 * time.Hour)},
		{51, now.Add(-time.Hour)},
		{50, now.Add(-30 * time.Minute)},
	}
	for _, s := range dupStores {
		if _, _, err := store.StoreInterface(journal.IfaceObs{IP: dupIP, HasMAC: true, MAC: e2eMAC(s.mac),
			Source: journal.SrcARP, At: s.at}); err != nil {
			t.Fatal(err)
		}
	}

	// Drain pushes into the streaming consumers until both problems
	// surface. No polling call: everything below is driven by pushes
	// (including the echo of the correlator's own gateway store).
	var (
		lastSeq     uint64
		dupAlert    bool
		gatewaySeen bool
	)
	apply := func(ch jclient.Change) {
		if ch.Resync {
			return
		}
		if ch.Seq <= lastSeq {
			t.Fatalf("push went backwards: seq %d after %d", ch.Seq, lastSeq)
		}
		lastSeq = ch.Seq
		switch ch.Kind {
		case journal.KindInterface:
			for _, p := range mon.ApplyInterface(ch.Iface) {
				if p.Kind == analysis.ProblemDuplicateAddr {
					dupAlert = true
				}
			}
			if err := str.ApplyInterface(ch.Iface); err != nil {
				t.Fatal(err)
			}
		case journal.KindGateway:
			gatewaySeen = true
			if err := str.ApplyGateway(ch.Gateway); err != nil {
				t.Fatal(err)
			}
		case journal.KindSubnet:
			mon.ApplySubnet(ch.Subnet)
			if err := str.ApplySubnet(ch.Subnet); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A store can touch several records (a gateway store also stamps its
	// member interfaces and subnets), so drain until the stream has
	// caught up with the journal's current seq — the correlator's echo
	// stores advance that target while we drain.
	for lastSeq < j.CurSeq() {
		apply(nextChange(t, sub))
	}
	if !dupAlert {
		t.Fatal("duplicate-IP alert never surfaced from the push stream")
	}
	if !gatewaySeen {
		t.Fatal("correlator's gateway store never echoed back")
	}
	if n := len(j.Gateways()); n != 1 {
		t.Fatalf("streaming correlator stored %d gateways, want 1", n)
	}

	// Phase 2: kill the server mid-stream. Records committed while the
	// subscriber is down must all arrive after the cursor resume — no
	// duplicates, no gaps.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := jserver.New(j) // same journal, same address: a restart
	if err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	store2, err := jclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	preSeq := j.CurSeq()
	const extra = 5
	for i := byte(0); i < extra; i++ {
		// Fresh identities: each store is a new record with its own
		// mod-seq, so the resumed stream owes us exactly these.
		if _, _, err := store2.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 9, 0, i+1),
			HasMAC: true, MAC: e2eMAC(100 + i), Source: journal.SrcARP, At: now}); err != nil {
			t.Fatal(err)
		}
	}

	got := make(map[uint64]bool)
	for len(got) < extra {
		ch := nextChange(t, sub)
		if ch.Resync {
			continue
		}
		apply(ch)
		if ch.Seq <= preSeq {
			t.Fatalf("resumed stream re-delivered old seq %d (cursor was %d)", ch.Seq, preSeq)
		}
		if got[ch.Seq] {
			t.Fatalf("resumed stream duplicated seq %d", ch.Seq)
		}
		got[ch.Seq] = true
	}
	for s := preSeq + 1; s <= preSeq+extra; s++ {
		if !got[s] {
			t.Fatalf("resumed stream missing seq %d (have %v)", s, got)
		}
	}
	if sub.Resumes() == 0 {
		t.Fatal("subscription never resumed across the restart")
	}

	// The streaming monitor's cumulative answer matches a batch pass
	// over the final journal.
	batch, err := analysis.Run(journal.Local{J: j}, analysis.Config{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if streamed := mon.Problems(); !reflect.DeepEqual(streamed, batch) {
		t.Fatalf("monitor diverged from batch:\n--- streamed ---\n%v\n--- batch ---\n%v", streamed, batch)
	}
}
