// Command subscribe-smoke is the CI driver for the push-based change
// stream: against a freshly booted fremontd it attaches a subscriber,
// drives interface stores over the journal protocol, kills the
// subscription mid-stream with pushes still in flight, reconnects from
// the last cursor the consumer actually processed, and asserts the
// observed mod-seq sequence is exactly 1..N — no gaps, no duplicates.
//
// Every observed event is appended to a transcript file (uploaded as a
// CI artifact) so a failure can be diagnosed from the run alone.
//
// Usage:
//
//	subscribe-smoke -journal 127.0.0.1:4741 -stores 50 -transcript transcript.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

func main() {
	journalAddr := flag.String("journal", "127.0.0.1:4741", "Journal Server address")
	stores := flag.Int("stores", 50, "interface records to store (each is one mod-seq)")
	killAfter := flag.Int("kill-after", 0, "events to consume before killing the connection (default stores/2)")
	transcript := flag.String("transcript", "subscribe-smoke.txt", "transcript file for the CI artifact")
	flag.Parse()
	if *killAfter <= 0 {
		*killAfter = *stores / 2
	}
	if err := run(*journalAddr, *stores, *killAfter, *transcript); err != nil {
		log.Fatalf("subscribe-smoke: %v", err)
	}
}

func run(addr string, stores, killAfter int, transcript string) error {
	out, err := os.Create(transcript)
	if err != nil {
		return err
	}
	defer out.Close()
	note := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		log.Printf(format, args...)
	}

	if err := waitReady(addr, 10*time.Second); err != nil {
		return err
	}

	// The smoke needs a fresh journal: each store below is a brand-new
	// record, so commit N carries mod-seq N and the stream owes us the
	// exact sequence 1..stores.
	sub, err := jclient.Subscribe(addr, jclient.SubscribeOptions{NoResume: true})
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}

	store, err := jclient.Dial(addr)
	if err != nil {
		return err
	}
	defer store.Close()
	now := time.Now()
	for i := 0; i < stores; i++ {
		obs := journal.IfaceObs{
			IP: pkt.IPv4(10, 200, byte(i/250), byte(i%250+1)), HasMAC: true,
			MAC:    pkt.MAC{0x08, 0x00, 0x20, 0xff, byte(i >> 8), byte(i)},
			Source: journal.SrcARP, At: now,
		}
		if _, _, err := store.StoreInterface(obs); err != nil {
			return fmt.Errorf("store %d: %w", i, err)
		}
	}
	note("stored %d interface records", stores)

	// Phase 1: consume part of the stream, then kill the connection with
	// the rest still in flight. The resume cursor is the last mod-seq the
	// consumer processed — not the subscription's internal cursor, which
	// may have buffered further ahead.
	seen := make(map[uint64]bool)
	var cursor uint64
	consume := func(phase string, sub *jclient.Subscription, until int) error {
		for len(seen) < until {
			select {
			case ch, ok := <-sub.Events():
				if !ok {
					return fmt.Errorf("%s: stream closed early (%d/%d events): %v",
						phase, len(seen), until, sub.Err())
				}
				if ch.Resync {
					note("%s: resync marker at cursor %d", phase, ch.Seq)
					continue
				}
				note("%s: seq=%d kind=%d", phase, ch.Seq, ch.Kind)
				if seen[ch.Seq] {
					return fmt.Errorf("%s: duplicate mod-seq %d", phase, ch.Seq)
				}
				if ch.Seq <= cursor {
					return fmt.Errorf("%s: mod-seq went backwards: %d after %d", phase, ch.Seq, cursor)
				}
				seen[ch.Seq] = true
				cursor = ch.Seq
			case <-time.After(10 * time.Second):
				return fmt.Errorf("%s: no push within 10s (%d/%d events)", phase, len(seen), until)
			}
		}
		return nil
	}
	if err := consume("phase1", sub, killAfter); err != nil {
		return err
	}
	sub.Close()
	note("killed connection at cursor %d with %d events still owed", cursor, stores-len(seen))

	// Phase 2: reconnect from the saved cursor; the remainder must arrive
	// with no duplicates and no gaps.
	sub2, err := jclient.Subscribe(addr, jclient.SubscribeOptions{After: cursor, NoResume: true})
	if err != nil {
		return fmt.Errorf("resubscribe: %w", err)
	}
	defer sub2.Close()
	if err := consume("phase2", sub2, stores); err != nil {
		return err
	}

	for seq := uint64(1); seq <= uint64(stores); seq++ {
		if !seen[seq] {
			return fmt.Errorf("mod-seq %d never delivered", seq)
		}
	}
	note("ok: %d mod-seqs delivered exactly once across the reconnect", stores)
	return nil
}

// waitReady polls until the server accepts connections.
func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
