// Command fabric-smoke is the CI driver for the sharded journal fabric:
// it boots a 3-shard fabric as three separate fremontd processes (one
// per shard, each with its own WAL), stores records through the
// consistent-hash routing client, SIGKILLs one shard and asserts reads
// degrade to partial results with the down shard named, replicates
// around the outage with the down shard's cursor held, restarts the
// shard (WAL recovery), and asserts the follow-up pull closes exactly
// the gap — every record present once, fabric-wide re-pull zero.
//
// Every step is appended to a transcript file (uploaded as a CI
// artifact) so a failure can be diagnosed from the run alone.
//
// Usage:
//
//	fabric-smoke -fremontd bin/fremontd -base-port 4750 -stores 90 \
//	  -transcript fabric-transcript.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"fremont/internal/fabric"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/replicate"
)

const shards = 3

func main() {
	bin := flag.String("fremontd", "bin/fremontd", "path to the fremontd binary")
	basePort := flag.Int("base-port", 4750, "first shard port; shard i listens on base-port+i")
	stores := flag.Int("stores", 90, "interface records to store through the fabric")
	dataDir := flag.String("data-dir", "", "fabric data directory (default: a temp dir)")
	transcript := flag.String("transcript", "fabric-smoke.txt", "transcript file for the CI artifact")
	flag.Parse()

	if *dataDir == "" {
		dir, err := os.MkdirTemp("", "fabric-smoke")
		if err != nil {
			log.Fatalf("fabric-smoke: %v", err)
		}
		*dataDir = dir
	}
	if err := run(*bin, *basePort, *stores, *dataDir, *transcript); err != nil {
		log.Fatalf("fabric-smoke: %v", err)
	}
}

// shardProc is one fremontd process serving one stripe of the fabric.
type shardProc struct {
	index int
	addr  string
	cmd   *exec.Cmd
}

func startShard(bin, dataDir string, basePort, index int) (*shardProc, error) {
	addr := fmt.Sprintf("127.0.0.1:%d", basePort+index)
	cmd := exec.Command(bin,
		"-listen", addr,
		"-shard-index", fmt.Sprint(index),
		"-shard-count", fmt.Sprint(shards),
		"-wal-dir", filepath.Join(dataDir, fmt.Sprintf("shard%d", index), "wal"),
		"-wal-fsync", "always",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start shard %d: %w", index, err)
	}
	return &shardProc{index: index, addr: addr, cmd: cmd}, nil
}

func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready after %v", addr, timeout)
}

func run(bin string, basePort, stores int, dataDir, transcript string) error {
	out, err := os.Create(transcript)
	if err != nil {
		return err
	}
	defer out.Close()
	note := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		log.Printf(format, args...)
	}

	procs := make([]*shardProc, shards)
	addrs := make([]string, shards)
	defer func() {
		for _, p := range procs {
			if p != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}
	}()
	for i := 0; i < shards; i++ {
		p, err := startShard(bin, dataDir, basePort, i)
		if err != nil {
			return err
		}
		procs[i] = p
		addrs[i] = p.addr
	}
	for _, a := range addrs {
		if err := waitReady(a, 10*time.Second); err != nil {
			return err
		}
	}
	note("booted %d-shard fabric on %v (data dir %s)", shards, addrs, dataDir)

	fc, err := jclient.DialFabric(addrs, 2)
	if err != nil {
		return err
	}
	defer fc.Close()

	// Store through hash routing; every record is brand-new, so IDs must
	// be unique fabric-wide and congruent with their owning stripe.
	now := time.Now()
	perShard := make([]int, shards)
	ids := map[journal.ID]bool{}
	for i := 0; i < stores; i++ {
		obs := journal.IfaceObs{
			IP: pkt.IPv4(10, 77, byte(i/250), byte(i%250+1)), HasMAC: true,
			MAC:    pkt.MAC{0x08, 0x00, 0x20, 0xfa, byte(i >> 8), byte(i)},
			Source: journal.SrcARP, At: now,
		}
		id, created, err := fc.StoreInterface(obs)
		if err != nil {
			return fmt.Errorf("store %d: %w", i, err)
		}
		if !created {
			return fmt.Errorf("store %d merged instead of creating", i)
		}
		if ids[id] {
			return fmt.Errorf("store %d: duplicate record ID %d across shards", i, id)
		}
		ids[id] = true
		perShard[fabric.ShardForID(id, shards)]++
	}
	note("stored %d records: per-shard distribution %v", stores, perShard)
	for i, n := range perShard {
		if n == 0 {
			return fmt.Errorf("shard %d received no records — routing is degenerate", i)
		}
	}

	count := func() (int, error) {
		got := 0
		var cursor journal.ID
		for {
			recs, next, more, err := fc.ScanInterfaces(cursor, 32, journal.Query{})
			if err != nil {
				return 0, err
			}
			got += len(recs)
			if !more {
				return got, nil
			}
			cursor = next
		}
	}
	if got, err := count(); err != nil || got != stores {
		return fmt.Errorf("healthy scan returned %d records, want %d (err %v)", got, stores, err)
	}
	if un := fc.Unavailable(); len(un) != 0 {
		return fmt.Errorf("healthy fabric reports unavailable shards: %v", un)
	}
	note("healthy scatter-gather scan: %d records, no shard down", stores)

	// SIGKILL shard 1 mid-run: reads must degrade to partial results that
	// name the down shard, not fail outright.
	if err := procs[1].cmd.Process.Kill(); err != nil {
		return err
	}
	procs[1].cmd.Wait()
	note("killed shard 1 (pid %d)", procs[1].cmd.Process.Pid)

	got, err := count()
	if err != nil {
		return fmt.Errorf("degraded scan failed outright: %w", err)
	}
	if want := stores - perShard[1]; got != want {
		return fmt.Errorf("degraded scan returned %d records, want %d (live shards only)", got, want)
	}
	un := fc.Unavailable()
	if len(un) != 1 || un[0] != fabric.ShardID(1) {
		return fmt.Errorf("Unavailable() = %v, want [%s]", un, fabric.ShardID(1))
	}
	note("degraded scan: %d/%d records, unavailable=%v", got, stores, un)

	// Replicate around the outage: the down shard is skipped with its
	// cursor held at zero, the live shards move everything they have.
	srcs := make([]replicate.ShardSource, shards)
	for i := 0; i < shards; i++ {
		srcs[i] = replicate.ShardSource{ID: fabric.ShardID(i), Src: fc.Shard(i)}
	}
	mirror := journal.New()
	rep, cur, err := replicate.PullFabric(journal.Local{J: mirror}, srcs, nil)
	if err != nil {
		return fmt.Errorf("degraded pull: %w", err)
	}
	if _, skipped := rep.Skipped[fabric.ShardID(1)]; !skipped {
		return fmt.Errorf("degraded pull did not skip the down shard: %+v", rep)
	}
	if n := rep.Total().Interfaces; n != stores-perShard[1] {
		return fmt.Errorf("degraded pull moved %d records, want %d", n, stores-perShard[1])
	}
	note("degraded pull: %s", rep)

	// Restart shard 1 against the same WAL: recovery must bring its
	// stripe back, and the pools redial transparently.
	p, err := startShard(bin, dataDir, basePort, 1)
	if err != nil {
		return err
	}
	procs[1] = p
	if err := waitReady(p.addr, 10*time.Second); err != nil {
		return err
	}
	// Drain stale pooled connections from before the kill.
	for attempt := 0; ; attempt++ {
		if err := fc.Ping(); err == nil {
			break
		} else if attempt > 10 {
			return fmt.Errorf("fabric did not recover after restart: %w", err)
		}
	}
	if got, err := count(); err != nil || got != stores {
		return fmt.Errorf("post-restart scan returned %d records, want %d (err %v)", got, stores, err)
	}
	if un := fc.Unavailable(); len(un) != 0 {
		return fmt.Errorf("post-restart Unavailable() = %v, want none", un)
	}
	note("shard 1 restarted, WAL recovered: full scan sees %d records again", stores)

	// The follow-up pull closes exactly the gap; a third pull is quiet.
	rep2, cur2, err := replicate.PullFabric(journal.Local{J: mirror}, srcs, cur)
	if err != nil {
		return fmt.Errorf("gap-closing pull: %w", err)
	}
	if n := rep2.Total().Interfaces; n != perShard[1] {
		return fmt.Errorf("gap-closing pull moved %d records, want exactly shard 1's %d", n, perShard[1])
	}
	if mirror.NumInterfaces() != stores {
		return fmt.Errorf("mirror has %d records, want %d (loss or duplicates)", mirror.NumInterfaces(), stores)
	}
	rep3, _, err := replicate.PullFabric(journal.Local{J: mirror}, srcs, cur2)
	if err != nil {
		return fmt.Errorf("re-pull: %w", err)
	}
	if n := rep3.Total().Interfaces + rep3.Total().Gateways + rep3.Total().Subnets; n != 0 {
		return fmt.Errorf("re-pull transferred %d records, want 0", n)
	}
	note("gap-closing pull: %s; mirror complete at %d records; re-pull zero", rep2, mirror.NumInterfaces())
	note("PASS: routing, degraded reads, per-shard replication cursors all verified")
	return nil
}
