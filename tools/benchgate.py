#!/usr/bin/env python3
"""Benchmark gate for the simulator hot path.

Parses `go test -bench` output, writes every reported metric to a JSON
artifact (BENCH_sim.json), and fails if a gated metric regresses past its
tolerance relative to the committed baseline.

Usage: benchgate.py <bench-output.txt> <baseline.json> <artifact.json>

The baseline gates on ratios, not raw wall time: sim-sec/wall-sec varies
with runner hardware, so its baseline is set conservatively below typical
CI throughput, while allocs/frame is hardware-independent and gated tight.
"""

import json
import re
import sys

BENCH_LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$")


def parse(path):
    """Return {bench name: {unit: value}} for every benchmark line.

    Every value-unit pair on a benchmark line is captured — ns/op and the
    -benchmem columns (B/op, allocs/op) exactly like custom ReportMetric
    units — so baselines can gate allocation regressions, not just time.
    """
    metrics = {}
    try:
        f = open(path)
    except OSError as e:
        sys.exit(f"::error::benchgate: cannot read bench output {path}: {e}")
    with f:
        for line in f:
            m = BENCH_LINE.match(line.strip())
            if not m:
                continue
            name, rest = m.groups()
            fields = rest.split()
            vals = metrics.setdefault(name, {})
            for value, unit in zip(fields[::2], fields[1::2]):
                try:
                    vals[unit] = float(value)
                except ValueError:
                    pass
    return metrics


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__.strip())
    bench_out, baseline_path, artifact = sys.argv[1:4]

    metrics = parse(bench_out)
    if not metrics:
        sys.exit(f"benchgate: no benchmark lines found in {bench_out}")
    with open(artifact, "w") as f:
        json.dump(metrics, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"benchgate: wrote {len(metrics)} benchmarks to {artifact}")

    # A gate that cannot load its baseline must fail loudly: a missing or
    # corrupt baseline file would otherwise crash with a bare traceback
    # (or, with no gates, pass vacuously) and the regression slips by.
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        sys.exit(f"::error::benchgate: cannot read baseline {baseline_path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"::error::benchgate: baseline {baseline_path} is not valid JSON: {e}")
    gates = baseline.get("gates")
    if not isinstance(gates, list) or not gates:
        sys.exit(f"::error::benchgate: baseline {baseline_path} has no gates; "
                 "refusing to pass vacuously")

    failures = []
    for gate in gates:
        bench, metric = gate["bench"], gate["metric"]
        got = metrics.get(bench, {}).get(metric)
        if got is None:
            failures.append(f"{bench} did not report {metric!r}")
            continue
        tol = gate.get("tolerance", 0.2)
        if "min" in gate:
            floor = gate["min"] * (1 - tol)
            verdict = "ok" if got >= floor else "REGRESSED"
            print(f"benchgate: {bench} {metric} = {got:g} "
                  f"(baseline {gate['min']:g}, floor {floor:g}) {verdict}")
            if got < floor:
                failures.append(
                    f"{bench} {metric} = {got:g}, more than {tol:.0%} below "
                    f"baseline {gate['min']:g}")
        if "max" in gate:
            ceil = gate["max"] * (1 + tol)
            verdict = "ok" if got <= ceil else "REGRESSED"
            print(f"benchgate: {bench} {metric} = {got:g} "
                  f"(baseline {gate['max']:g}, ceiling {ceil:g}) {verdict}")
            if got > ceil:
                failures.append(
                    f"{bench} {metric} = {got:g}, more than {tol:.0%} above "
                    f"baseline {gate['max']:g}")

    if failures:
        for f_ in failures:
            print(f"::error::benchgate: {f_}")
        sys.exit(1)
    print("benchgate: all gates passed")


if __name__ == "__main__":
    main()
