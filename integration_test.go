// End-to-end integration tests: the full Fremont deployment with real TCP
// between components — Explorer Modules on the simulated campus recording
// through the Journal Server protocol, analysis and presentation reading
// back over the wire, snapshots surviving a server restart, and two sites
// exchanging Journals.
package fremont_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
	"fremont/internal/present"
	"fremont/internal/replicate"
)

func startServer(t *testing.T, snapshot string) (*jserver.Server, *jclient.Client) {
	t.Helper()
	srv := jserver.New(nil)
	srv.SnapshotPath = snapshot
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := jclient.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); srv.Close() })
	return srv, c
}

func TestEndToEndOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "journal.snap")
	srv, client := startServer(t, snap)

	cfg := campus.DefaultConfig()
	cfg.Seed = 501
	cfg.CSHosts = 20
	cfg.InjectFaults = true
	sys := core.NewDepartmentSystem(cfg)
	sys.Sink = client // every module write crosses the TCP boundary
	sys.Advance(5 * time.Minute)

	// Make sure somebody ARPs for the duplicated address during the watch
	// (both claimants answer; the tap records both MACs). Chatter would
	// get there eventually; this makes the test deterministic.
	dupIP := sys.Campus.Faults.DuplicateIP
	for i := 1; i <= 2; i++ {
		delay := time.Duration(i) * 25 * time.Minute // past the ARP cache TTL
		sys.Campus.Net.Sched.After(delay, func() {
			sys.Campus.Fremont.FlushARP()
			u := &pkt.UDPPacket{SrcPort: 1, DstPort: 9}
			h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dupIP, TTL: 30}
			_ = sys.Campus.Fremont.SendIP(h, u.Encode(sys.Campus.FremontIP, dupIP))
		})
	}

	// A realistic monitoring day: watch, sweep, ask, listen.
	steps := []struct {
		m explorer.Module
		p explorer.Params
	}{
		{explorer.ARPwatch{}, explorer.Params{Duration: time.Hour}},
		{explorer.EtherHostProbe{}, explorer.Params{}},
		{explorer.SubnetMasks{}, explorer.Params{}},
		{explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}},
		{explorer.TrafficWatch{}, explorer.Params{Duration: 10 * time.Minute}},
	}
	for _, s := range steps {
		if _, err := sys.RunModule(s.m, s.p); err != nil {
			t.Fatalf("%s: %v", s.m.Info().Name, err)
		}
	}

	// The mask-conflict and promiscuous-RIP faults must be visible through
	// the TCP client.
	problems, err := analysis.Run(client, analysis.Config{Now: sys.Now()})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[analysis.ProblemKind]bool{}
	for _, p := range problems {
		kinds[p.Kind] = true
	}
	for _, want := range []analysis.ProblemKind{
		analysis.ProblemMaskConflict,
		analysis.ProblemPromiscuousRIP,
		analysis.ProblemDuplicateAddr,
	} {
		if !kinds[want] {
			t.Errorf("problem %s not visible over TCP (have %v)", want, kinds)
		}
	}

	// Presentation over the wire.
	var buf bytes.Buffer
	if err := present.Level2(&buf, client, sys.Campus.CSSubnet, sys.Now()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "yes") { // the RIP source column
		t.Errorf("level 2 over TCP lost the RIP flag:\n%s", buf.String())
	}

	// Snapshot + restart: nothing lost.
	wantIfaces := srv.Journal().NumInterfaces()
	client.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := jserver.New(nil)
	srv2.SnapshotPath = snap
	if err := srv2.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Journal().NumInterfaces(); got != wantIfaces {
		t.Fatalf("restart lost records: %d vs %d", got, wantIfaces)
	}
}

func TestTwoSitesExchangeJournals(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Site A explores its department; site B explores another (different
	// seed → different wire). After an exchange, each journal holds both
	// sites' discoveries.
	explore := func(seed int64) *core.System {
		cfg := campus.DefaultConfig()
		cfg.Seed = seed
		cfg.CSHosts = 10
		cfg.Chatter = false
		cfg.Liveness = false
		sys := core.NewDepartmentSystem(cfg)
		sys.Advance(5 * time.Minute)
		if _, err := sys.RunModule(explorer.EtherHostProbe{}, explorer.Params{}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := explore(502)
	b := explore(503)

	na, nb := a.J.NumInterfaces(), b.J.NumInterfaces()
	if na == 0 || nb == 0 {
		t.Fatal("sites discovered nothing")
	}
	if _, _, _, _, err := replicate.Exchange(journal.Local{J: a.J}, journal.Local{J: b.J}, replicate.Cursor{}, replicate.Cursor{}); err != nil {
		t.Fatal(err)
	}
	// Same campus addressing (both simulate 128.138.238.0/24), so records
	// merge rather than add; each side must now know at least as much as
	// the larger site.
	max := na
	if nb > max {
		max = nb
	}
	if a.J.NumInterfaces() < max || b.J.NumInterfaces() < max {
		t.Fatalf("exchange lost information: a=%d b=%d (pre: %d, %d)",
			a.J.NumInterfaces(), b.J.NumInterfaces(), na, nb)
	}
}

func TestManagerAdaptsOverSimulatedWeeks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Drive the Discovery Manager through repeated batches over simulated
	// weeks. Modules that stop being fruitful must back off toward their
	// maximum intervals.
	cfg := campus.DefaultConfig()
	cfg.Seed = 504
	cfg.CSHosts = 10
	cfg.Chatter = false
	cfg.Liveness = false
	sys := core.NewDepartmentSystem(cfg)
	sys.Advance(5 * time.Minute)
	mgr := sys.NewManager("")

	batches := 0
	for i := 0; i < 40; i++ {
		if _, err := sys.RunManagerBatch(mgr); err != nil {
			t.Fatal(err)
		}
		batches++
		next, ok := mgr.NextDue()
		if !ok {
			break
		}
		if d := next.Sub(sys.Now()); d > 0 {
			sys.Advance(d + time.Minute)
		}
		if sys.Now().Sub(time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)) > 40*24*time.Hour {
			break
		}
	}
	if batches < 5 {
		t.Fatalf("only %d batches ran", batches)
	}
	// On a static department, repeat sweeps find nothing new: the probe
	// modules must have backed off beyond their minimum intervals.
	backedOff := 0
	for _, name := range []string{"SeqPing", "EtherHostProbe", "SubnetMasks"} {
		st := mgr.State(name)
		if st == nil || st.Runs < 2 {
			continue
		}
		if st.Interval > explorer.ByName(name).Info().MinInterval {
			backedOff++
		}
	}
	if backedOff == 0 {
		t.Fatal("no probe module backed off on a static network")
	}
	// Sanity: the journal stabilized (no runaway growth).
	if n := sys.J.NumInterfaces(); n > 60 {
		t.Fatalf("journal grew to %d interfaces on a 13-machine wire", n)
	}
}
