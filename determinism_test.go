package fremont_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/jserver"
	"fremont/internal/netsim/campus"
)

// Golden trace for the simulation engine. The discrete-event engine is
// allowed to get faster, but never to change behaviour: a fixed-seed run of
// the campus — background chatter, liveness cycling, RIP advertisements,
// passive and active modules — must produce a byte-identical Journal and the
// same frame count, run after run and rewrite after rewrite. Same-timestamp
// events tie-break by scheduling sequence, so any queue replacement that
// perturbs that order shows up here immediately.
//
// If a deliberate behaviour change invalidates these constants, rerun the
// test and copy the digest/frame count it reports into the constants below
// (the failure message prints both).
const (
	goldenTraceDigest = "2a16481de47b37471479cb7b7773f12826cbc9de80fb5e241f7b939704effd21"
	goldenTraceFrames = 38366
)

// goldenTraceRun runs the campus for ~30 simulated minutes at a fixed seed:
// passive RIPwatch, an active broadcast-ping sweep, and an ARPwatch window,
// all over the default (chattering, liveness-cycled) campus. It returns the
// SHA-256 of the resulting Journal snapshot encoding and the total frame
// count offered to all segments.
func goldenTraceRun(t *testing.T) (string, int) {
	t.Helper()
	cfg := campus.DefaultConfig()
	cfg.Seed = benchSeed
	sys := core.NewSystem(cfg)
	sys.Advance(5 * time.Minute)
	if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModule(explorer.BroadcastPing{}, explorer.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 15 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(jserver.EncodeSnapshot(sys.J))
	return hex.EncodeToString(sum[:]), sys.Campus.Net.TotalFrames()
}

func TestGoldenTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated campus run")
	}
	d1, f1 := goldenTraceRun(t)
	d2, f2 := goldenTraceRun(t)
	if d1 != d2 || f1 != f2 {
		t.Fatalf("two identical-seed runs diverged:\nrun1 digest=%s frames=%d\nrun2 digest=%s frames=%d",
			d1, f1, d2, f2)
	}
	if d1 != goldenTraceDigest || f1 != goldenTraceFrames {
		t.Fatalf("golden trace drifted: digest=%s frames=%d, want digest=%s frames=%d\n"+
			"(a simulator change altered observable behaviour; if intentional, update the constants)",
			d1, f1, goldenTraceDigest, goldenTraceFrames)
	}
}
