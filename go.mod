module fremont

go 1.22
